(* Unit and property tests for the bss_util substrate: bignums, rationals,
   integer helpers, PRNG, selection, statistics, tables. *)

open Bss_util
module B = Bigint

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* ---------------- Bigint unit tests ---------------- *)

let test_bigint_of_to_int () =
  List.iter
    (fun n -> check (Alcotest.option int_c) (string_of_int n) (Some n) (B.to_int_opt (B.of_int n)))
    [ 0; 1; -1; 42; -42; 1 lsl 29; (1 lsl 30) - 1; 1 lsl 30; 1 lsl 45; max_int; -max_int ]

let test_bigint_add_sub () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "987654321098765432109876543210" in
  check string_c "add" "1111111110111111111011111111100" (B.to_string (B.add a b));
  check string_c "sub" "-864197532086419753208641975320" (B.to_string (B.sub a b));
  check string_c "sub rev" "864197532086419753208641975320" (B.to_string (B.sub b a));
  check bool_c "a + (-a) = 0" true (B.is_zero (B.add a (B.neg a)))

let test_bigint_mul () =
  let a = B.of_string "123456789012345678901234567890" in
  check string_c "square" "15241578753238836750495351562536198787501905199875019052100"
    (B.to_string (B.mul a a));
  check string_c "mul sign" "-246913578024691357802469135780" (B.to_string (B.mul a (B.of_int (-2))))

let test_bigint_divmod () =
  let a = B.of_string "15241578753238836750495351562536198787501905199875019052100" in
  let b = B.of_string "123456789012345678901234567890" in
  let q, r = B.divmod a b in
  check string_c "q" (B.to_string b) (B.to_string q);
  check bool_c "r=0" true (B.is_zero r);
  let q, r = B.divmod (B.add a B.one) b in
  check string_c "q2" (B.to_string b) (B.to_string q);
  check string_c "r2" "1" (B.to_string r);
  (* Euclidean: negative dividend. *)
  let q, r = B.divmod (B.of_int (-7)) (B.of_int 2) in
  check int_c "(-7)/2 floor" (-4) (B.to_int_exn q);
  check int_c "(-7) mod 2" 1 (B.to_int_exn r)

let test_bigint_cdiv () =
  check int_c "cdiv 7 2" 4 (B.to_int_exn (B.cdiv (B.of_int 7) (B.of_int 2)));
  check int_c "cdiv 8 2" 4 (B.to_int_exn (B.cdiv (B.of_int 8) (B.of_int 2)));
  check int_c "cdiv 0 5" 0 (B.to_int_exn (B.cdiv B.zero (B.of_int 5)))

let test_bigint_gcd () =
  check int_c "gcd 12 18" 6 (B.to_int_exn (B.gcd (B.of_int 12) (B.of_int 18)));
  check int_c "gcd 0 5" 5 (B.to_int_exn (B.gcd B.zero (B.of_int 5)));
  check int_c "gcd -12 18" 6 (B.to_int_exn (B.gcd (B.of_int (-12)) (B.of_int 18)));
  let a = B.of_string "2305843009213693952" (* 2^61 *) in
  let b = B.of_string "4611686018427387904" (* 2^62 *) in
  check string_c "gcd powers of two" "2305843009213693952" (B.to_string (B.gcd a b))

let test_bigint_string_roundtrip () =
  List.iter
    (fun s -> check string_c s s (B.to_string (B.of_string s)))
    [ "0"; "1"; "-1"; "999999999"; "1000000000"; "123456789012345678901234567890"; "-42" ]

let test_bigint_shift () =
  check string_c "shl 100" (B.to_string (B.mul (B.of_int 3) (B.of_string "1267650600228229401496703205376")))
    (B.to_string (B.shift_left (B.of_int 3) 100));
  check int_c "shr" 3 (B.to_int_exn (B.shift_right (B.of_int 25) 3))

(* ---------------- Bigint property tests ---------------- *)

let int_small = QCheck2.Gen.int_range (-1_000_000_000) 1_000_000_000

let prop_add_matches_int =
  QCheck2.Test.make ~name:"bigint add matches native" ~count:500
    QCheck2.Gen.(pair int_small int_small)
    (fun (a, b) -> B.to_int_exn (B.add (B.of_int a) (B.of_int b)) = a + b)

let prop_mul_matches_int =
  QCheck2.Test.make ~name:"bigint mul matches native" ~count:500
    QCheck2.Gen.(pair int_small int_small)
    (fun (a, b) -> B.to_int_exn (B.mul (B.of_int a) (B.of_int b)) = a * b)

let prop_divmod_identity =
  QCheck2.Test.make ~name:"bigint divmod identity" ~count:500
    QCheck2.Gen.(pair int_small (int_range 1 1_000_000))
    (fun (a, b) ->
      let q, r = B.divmod (B.of_int a) (B.of_int b) in
      let back = B.add (B.mul q (B.of_int b)) r in
      B.to_int_exn back = a && B.sign r >= 0 && B.compare r (B.of_int b) < 0)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"bigint gcd divides both" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000_000) (int_range 1 1_000_000_000))
    (fun (a, b) ->
      let g = B.gcd (B.of_int a) (B.of_int b) in
      let gi = B.to_int_exn g in
      gi > 0 && a mod gi = 0 && b mod gi = 0 && gi = Intmath.gcd a b)

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"bigint decimal roundtrip" ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      let s = if String.length s > 1 then String.concat "" [ "1"; s ] else s in
      B.to_string (B.of_string s) = s)

let test_bigint_division_by_zero () =
  check bool_c "divmod" true (try ignore (B.divmod B.one B.zero); false with Division_by_zero -> true);
  check bool_c "of_string empty" true
    (try ignore (B.of_string ""); false with Invalid_argument _ -> true);
  check bool_c "of_string junk" true
    (try ignore (B.of_string "12x4"); false with Invalid_argument _ -> true);
  check int_c "of_string plus" 5 (B.to_int_exn (B.of_string "+5"))

(* ---------------- Rat tests ---------------- *)

let rat_c = Alcotest.testable Rat.pp Rat.equal

let test_rat_basic () =
  let open Rat.Infix in
  let half = Rat.of_ints 1 2 and third = Rat.of_ints 1 3 in
  check rat_c "1/2+1/3" (Rat.of_ints 5 6) (half +/ third);
  check rat_c "1/2-1/3" (Rat.of_ints 1 6) (half -/ third);
  check rat_c "1/2*1/3" (Rat.of_ints 1 6) (half */ third);
  check rat_c "(1/2)/(1/3)" (Rat.of_ints 3 2) (half // third);
  check rat_c "normalize" (Rat.of_ints 1 2) (Rat.of_ints (-3) (-6));
  check rat_c "negative den" (Rat.of_ints (-1) 2) (Rat.of_ints 3 (-6))

let test_rat_floor_ceil () =
  check int_c "floor 7/2" 3 (Rat.floor_int (Rat.of_ints 7 2));
  check int_c "ceil 7/2" 4 (Rat.ceil_int (Rat.of_ints 7 2));
  check int_c "floor -7/2" (-4) (Rat.floor_int (Rat.of_ints (-7) 2));
  check int_c "ceil -7/2" (-3) (Rat.ceil_int (Rat.of_ints (-7) 2));
  check int_c "floor 4" 4 (Rat.floor_int (Rat.of_int 4));
  check int_c "ceil 4" 4 (Rat.ceil_int (Rat.of_int 4))

let test_rat_errors () =
  check bool_c "zero denominator" true
    (try ignore (Rat.of_ints 1 0); false with Division_by_zero -> true);
  check bool_c "div by zero" true
    (try ignore (Rat.div Rat.one Rat.zero); false with Division_by_zero -> true);
  check bool_c "inv zero" true (try ignore (Rat.inv Rat.zero); false with Division_by_zero -> true)

let test_rat_compare () =
  check bool_c "1/3 < 1/2" true Rat.(of_ints 1 3 < of_ints 1 2);
  check bool_c "2/4 = 1/2" true (Rat.equal (Rat.of_ints 2 4) (Rat.of_ints 1 2));
  check rat_c "min" (Rat.of_ints 1 3) (Rat.min (Rat.of_ints 1 3) (Rat.of_ints 1 2));
  check bool_c "to_int_opt 6/3" true (Rat.to_int_opt (Rat.of_ints 6 3) = Some 2);
  check bool_c "to_int_opt 1/2" true (Rat.to_int_opt (Rat.of_ints 1 2) = None)

let prop_rat_field =
  QCheck2.Test.make ~name:"rat field laws on samples" ~count:500
    QCheck2.Gen.(
      quad (int_range (-1000) 1000) (int_range 1 1000) (int_range (-1000) 1000) (int_range 1 1000))
    (fun (a, b, c, d) ->
      let open Rat.Infix in
      let x = Rat.of_ints a b and y = Rat.of_ints c d in
      Rat.equal (x +/ y) (y +/ x)
      && Rat.equal (x */ y) (y */ x)
      && Rat.equal (x -/ y) (Rat.neg (y -/ x))
      && Rat.equal ((x +/ y) */ Rat.two) ((Rat.two */ x) +/ (Rat.two */ y))
      && (Rat.is_zero y || Rat.equal (x // y */ y) x))

let prop_rat_floor_ceil =
  QCheck2.Test.make ~name:"rat floor/ceil sandwich" ~count:500
    QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range 1 1000))
    (fun (p, q) ->
      let x = Rat.of_ints p q in
      let f = Rat.of_bigint (Rat.floor x) and c = Rat.of_bigint (Rat.ceil x) in
      Rat.( <= ) f x && Rat.( <= ) x c
      && Rat.( < ) x (Rat.add f Rat.one)
      && Rat.( > ) x (Rat.sub c Rat.one)
      && (Rat.is_integer x = Rat.equal f c))

(* ---------------- Intmath ---------------- *)

let test_intmath () =
  check int_c "ceil_div 7 2" 4 (Intmath.ceil_div 7 2);
  check int_c "ceil_div 8 2" 4 (Intmath.ceil_div 8 2);
  check int_c "ceil_div 0 5" 0 (Intmath.ceil_div 0 5);
  check int_c "floor_div 7 2" 3 (Intmath.floor_div 7 2);
  check int_c "gcd" 6 (Intmath.gcd 12 18);
  check int_c "log2_ceil 1" 0 (Intmath.log2_ceil 1);
  check int_c "log2_ceil 1024" 10 (Intmath.log2_ceil 1024);
  check int_c "log2_ceil 1025" 11 (Intmath.log2_ceil 1025);
  check int_c "pow" 243 (Intmath.pow 3 5);
  check int_c "sum" 10 (Intmath.sum_array [| 1; 2; 3; 4 |]);
  check int_c "max" 9 (Intmath.max_array [| 3; 9; 1 |]);
  check int_c "min" 1 (Intmath.min_array [| 3; 9; 1 |]);
  check int_c "clamp lo" 2 (Intmath.clamp 2 5 0);
  check int_c "clamp hi" 5 (Intmath.clamp 2 5 9);
  check int_c "clamp in" 3 (Intmath.clamp 2 5 3)

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check bool_c "same stream" true (Prng.next_int64 a = Prng.next_int64 b)
  done

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    check bool_c "in range" true (v >= 0 && v < 10);
    let w = Prng.int_in rng 5 9 in
    check bool_c "int_in range" true (w >= 5 && w <= 9);
    let f = Prng.float rng in
    check bool_c "float range" true (f >= 0.0 && f < 1.0)
  done

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool_c "permutation" true (sorted = Array.init 50 (fun i -> i))

let test_prng_zipf () =
  let rng = Prng.create 3 in
  for _ = 1 to 200 do
    let v = Prng.zipf rng ~alpha:1.2 ~n:10 in
    check bool_c "zipf range" true (v >= 1 && v <= 10)
  done

(* ---------------- Select ---------------- *)

let prop_select_matches_sort =
  QCheck2.Test.make ~name:"select = sorted.(k)" ~count:300
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 0 100))
    (fun l ->
      let a = Array.of_list l in
      let sorted = Array.copy a in
      Array.sort compare sorted;
      let ok = ref true in
      for k = 0 to Array.length a - 1 do
        if Select.kth_smallest ~cmp:compare a k <> sorted.(k) then ok := false
      done;
      !ok)

let test_weighted_median_simple () =
  (* weights 1,1,5: median by weight is the heavy element *)
  let a = [| (1, 1.0); (2, 1.0); (3, 5.0) |] in
  let m = Select.weighted_median ~weight:snd ~cmp:(fun (x, _) (y, _) -> compare x y) a in
  check int_c "heavy wins" 3 (fst m)

let prop_weighted_median =
  QCheck2.Test.make ~name:"weighted median invariant" ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) (pair (int_range 0 50) (int_range 1 10)))
    (fun l ->
      let a = Array.of_list l in
      let cmp (x, _) (y, _) = compare x y in
      let weight (_, w) = float_of_int w in
      let med = Select.weighted_median ~weight ~cmp a in
      let total = Array.fold_left (fun acc x -> acc +. weight x) 0.0 a in
      let below = Array.fold_left (fun acc x -> if cmp x med < 0 then acc +. weight x else acc) 0.0 a in
      let upto = Array.fold_left (fun acc x -> if cmp x med <= 0 then acc +. weight x else acc) 0.0 a in
      below < (total /. 2.0) +. 1e-9 && upto >= (total /. 2.0) -. 1e-9)

(* ---------------- Stats ---------------- *)

let test_stats () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean a);
  check (Alcotest.float 1e-9) "median even" 2.5 (Stats.median a);
  check (Alcotest.float 1e-9) "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min a);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max a);
  check (Alcotest.float 1e-6) "stddev" (sqrt (5.0 /. 3.0)) (Stats.stddev a);
  check (Alcotest.float 1e-9) "geomean" 2.0 (Stats.geometric_mean [| 1.0; 2.0; 4.0 |])

let test_loglog_slope () =
  (* y = 3 x^2 exactly -> slope 2 *)
  let pts = Array.init 5 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 3.0 *. (x ** 2.0)))
  in
  check (Alcotest.float 1e-9) "slope" 2.0 (Stats.loglog_slope pts)

(* ---------------- Parallel ---------------- *)

let test_parallel_map_order () =
  let xs = List.init 100 (fun i -> i) in
  check bool_c "order preserved" true (Parallel.map (fun x -> x * x) xs = List.map (fun x -> x * x) xs);
  check bool_c "empty" true (Parallel.map (fun x -> x) [] = ([] : int list));
  check bool_c "singleton" true (Parallel.map (fun x -> x + 1) [ 41 ] = [ 42 ])

let test_parallel_actually_concurrent () =
  (* with 2+ domains, both halves make progress; we just assert the
     result is right under a domain count > 1 *)
  let xs = List.init 64 (fun i -> i) in
  check bool_c "domains=4" true
    (Parallel.map ~domains:4 (fun x -> x * 2) xs = List.map (fun x -> x * 2) xs);
  check int_c "recommended >= 1" 1 (min 1 (Parallel.recommended ()))

let test_parallel_propagates_exception () =
  check bool_c "raises" true
    (try
       Parallel.iter ~domains:3 (fun x -> if x = 13 then failwith "boom") (List.init 30 (fun i -> i));
       false
     with Failure _ -> true)

let test_parallel_uneven_work_order () =
  (* items cost wildly different amounts; the shared work queue must not
     leak completion order into the result *)
  let busy k =
    let acc = ref 0 in
    for i = 1 to 1 + ((k * 7919) mod 5000) do
      acc := !acc + (i mod 7)
    done;
    !acc + (k * 2)
  in
  let xs = List.init 150 (fun i -> i) in
  check bool_c "uneven order preserved" true
    (Parallel.map ~domains:4 busy xs = List.map busy xs)

let test_parallel_exception_after_all_finish () =
  (* the exception is re-raised only after every domain joins: any item a
     worker started (except the raising one) must also have finished *)
  let started = Atomic.make 0 and finished = Atomic.make 0 in
  let raised =
    try
      Parallel.iter ~domains:4
        (fun x ->
          Atomic.incr started;
          if x = 7 then failwith "boom";
          (* spread the work so several domains are mid-item when the
             failure lands *)
          let acc = ref 0 in
          for i = 1 to 20_000 do acc := !acc + (i mod 3) done;
          ignore !acc;
          Atomic.incr finished)
        (List.init 40 (fun i -> i));
      false
    with Failure _ -> true
  in
  check bool_c "raised" true raised;
  check int_c "only the raising item is unfinished" (Atomic.get started - 1) (Atomic.get finished)

let test_parallel_single_domain_degenerate () =
  (* domains:1 runs items in order on the caller; a failure stops the
     sweep right there *)
  let seen = ref [] in
  check bool_c "map matches" true
    (Parallel.map ~domains:1 (fun x -> x * 3) (List.init 20 (fun i -> i))
    = List.map (fun x -> x * 3) (List.init 20 (fun i -> i)));
  check bool_c "raises" true
    (try
       Parallel.iter ~domains:1
         (fun x ->
           if x = 5 then failwith "boom";
           seen := x :: !seen)
         (List.init 10 (fun i -> i));
       false
     with Failure _ -> true);
  check bool_c "stopped at the failure" true (List.rev !seen = [ 0; 1; 2; 3; 4 ])

let test_parallel_select_under_domains () =
  (* quickselect uses domain-local pivot PRNGs: concurrent selects agree
     with sorting *)
  let ok =
    Parallel.map ~domains:4
      (fun seed ->
        let rng = Prng.create seed in
        let a = Array.init 200 (fun _ -> Prng.int rng 1000) in
        let sorted = Array.copy a in
        Array.sort compare sorted;
        Select.kth_smallest ~cmp:compare a 100 = sorted.(100))
      (List.init 32 (fun i -> i))
  in
  check bool_c "all agree" true (List.for_all (fun b -> b) ok)

(* ---------------- Parallel.map_results: crash containment ---------------- *)

let test_map_results_all_ok () =
  let r = Parallel.map_results ~domains:4 (fun x -> x * x) (List.init 50 (fun i -> i)) in
  check bool_c "all ok in order" true
    (r = List.init 50 (fun i -> Ok (i * i)));
  check bool_c "empty" true (Parallel.map_results (fun x -> x) [] = ([] : (int, Parallel.failure) result list));
  check bool_c "singleton" true (Parallel.map_results (fun x -> x + 1) [ 41 ] = [ Ok 42 ])

(* several items fail at once on different domains; the sweep still
   evaluates everything, keeps order, and attributes each failure to the
   right index with the right exception *)
let test_map_results_multi_failure () =
  let bad x = x mod 7 = 3 in
  let r =
    Parallel.map_results ~domains:4 ~retries:0
      (fun x -> if bad x then failwith (string_of_int x) else x * 10)
      (List.init 60 (fun i -> i))
  in
  check int_c "length" 60 (List.length r);
  List.iteri
    (fun i o ->
      match o with
      | Ok y ->
        check bool_c (Printf.sprintf "item %d ok" i) false (bad i);
        check int_c (Printf.sprintf "item %d value" i) (i * 10) y
      | Error { Parallel.index; attempts; exn } ->
        check bool_c (Printf.sprintf "item %d failed" i) true (bad i);
        check int_c "index attribution" i index;
        check int_c "no retries requested" 1 attempts;
        check bool_c "exn attribution" true (exn = Failure (string_of_int i)))
    r

(* an item that raises is retried at most [retries] extra times, and a
   flaky item that recovers within the bound reports Ok *)
let test_map_results_retry_bound () =
  let n = 12 in
  let calls = Array.init n (fun _ -> Atomic.make 0) in
  let r =
    Parallel.map_results ~domains:3 ~retries:2
      (fun i ->
        let k = Atomic.fetch_and_add calls.(i) 1 in
        (* item 4 recovers on its second attempt; item 9 never does *)
        if (i = 4 && k = 0) || i = 9 then failwith "flaky";
        i)
      (List.init n (fun i -> i))
  in
  List.iteri
    (fun i o ->
      let made = Atomic.get calls.(i) in
      match o with
      | Ok y ->
        check int_c (Printf.sprintf "item %d value" i) i y;
        check int_c (Printf.sprintf "item %d calls" i) (if i = 4 then 2 else 1) made
      | Error { Parallel.attempts; _ } ->
        check int_c "only the hopeless item fails" 9 i;
        check int_c "attempts = 1 + retries" 3 attempts;
        check int_c "calls match attempts" 3 made)
    r;
  check bool_c "retries < 0 rejected" true
    (try ignore (Parallel.map_results ~retries:(-1) (fun x -> x) [ 1 ]); false
     with Invalid_argument _ -> true)

(* unlike [map], a failure must not abort the items after it *)
let test_map_results_no_early_abort () =
  let evaluated = Atomic.make 0 in
  let r =
    Parallel.map_results ~domains:1 ~retries:0
      (fun x ->
        Atomic.incr evaluated;
        if x = 0 then failwith "first";
        x)
      (List.init 10 (fun i -> i))
  in
  check int_c "every item evaluated" 10 (Atomic.get evaluated);
  check int_c "one failure" 1
    (List.length (List.filter (function Error _ -> true | Ok _ -> false) r))

(* ---------------- Table ---------------- *)

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "a"; "1" ]; [ "long-name"; "22" ] ] in
  check bool_c "contains header" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> l = "| name      | value |"));
  (* Ragged rows are padded/truncated. *)
  let s2 = Table.render ~header:[ "a"; "b" ] [ [ "x" ]; [ "1"; "2"; "3" ] ] in
  check bool_c "ragged handled" true (String.length s2 > 0)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bss_util"
    [
      ( "bigint",
        [
          Alcotest.test_case "of/to int" `Quick test_bigint_of_to_int;
          Alcotest.test_case "add/sub" `Quick test_bigint_add_sub;
          Alcotest.test_case "mul" `Quick test_bigint_mul;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "cdiv" `Quick test_bigint_cdiv;
          Alcotest.test_case "gcd" `Quick test_bigint_gcd;
          Alcotest.test_case "string roundtrip" `Quick test_bigint_string_roundtrip;
          Alcotest.test_case "shift" `Quick test_bigint_shift;
          Alcotest.test_case "division errors" `Quick test_bigint_division_by_zero;
        ] );
      qsuite "bigint-props"
        [ prop_add_matches_int; prop_mul_matches_int; prop_divmod_identity; prop_gcd_divides; prop_string_roundtrip ];
      ( "rat",
        [
          Alcotest.test_case "basic ops" `Quick test_rat_basic;
          Alcotest.test_case "floor/ceil" `Quick test_rat_floor_ceil;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "errors" `Quick test_rat_errors;
        ] );
      qsuite "rat-props" [ prop_rat_field; prop_rat_floor_ceil ];
      ("intmath", [ Alcotest.test_case "all" `Quick test_intmath ]);
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "zipf" `Quick test_prng_zipf;
        ] );
      ( "select",
        [
          Alcotest.test_case "weighted median simple" `Quick test_weighted_median_simple;
        ] );
      qsuite "select-props" [ prop_select_matches_sort; prop_weighted_median ];
      ( "stats",
        [
          Alcotest.test_case "descriptive" `Quick test_stats;
          Alcotest.test_case "loglog slope" `Quick test_loglog_slope;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map order" `Quick test_parallel_map_order;
          Alcotest.test_case "concurrent" `Quick test_parallel_actually_concurrent;
          Alcotest.test_case "exception" `Quick test_parallel_propagates_exception;
          Alcotest.test_case "uneven work order" `Quick test_parallel_uneven_work_order;
          Alcotest.test_case "exception after all finish" `Quick test_parallel_exception_after_all_finish;
          Alcotest.test_case "single domain" `Quick test_parallel_single_domain_degenerate;
          Alcotest.test_case "select under domains" `Quick test_parallel_select_under_domains;
          Alcotest.test_case "map_results all ok" `Quick test_map_results_all_ok;
          Alcotest.test_case "map_results multi failure" `Quick test_map_results_multi_failure;
          Alcotest.test_case "map_results retry bound" `Quick test_map_results_retry_bound;
          Alcotest.test_case "map_results no early abort" `Quick test_map_results_no_early_abort;
        ] );
      ("table", [ Alcotest.test_case "render" `Quick test_table_render ]);
    ]
