(* Differential and boundary tests for the two-tier rational layer (Num2)
   and the flat CSR instance layout.

   The contract under test: the native fast tier changes representation,
   never values. Overflow-adjacent operations must promote to the Bigint
   tier (not wrap), forced-exact solves must be bit-identical to two-tier
   solves across every workload family, and the comparison fast paths must
   allocate nothing. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_workloads
open Bss_oracle
module B = Bigint
module Rerror = Bss_resilience.Error

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let int_opt_c = Alcotest.(option int)
let rat_c = Alcotest.testable Rat.pp Rat.equal

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x2b17 |])) tests)

(* ---------------- Intmath overflow predicates ---------------- *)

let test_checked_boundaries () =
  check int_opt_c "add at max" (Some max_int) (Intmath.add_checked (max_int - 1) 1);
  check int_opt_c "add over max" None (Intmath.add_checked max_int 1);
  check int_opt_c "add at min" (Some min_int) (Intmath.add_checked (min_int + 1) (-1));
  check int_opt_c "add under min" None (Intmath.add_checked min_int (-1));
  check int_opt_c "sub under min" None (Intmath.sub_checked min_int 1);
  check int_opt_c "sub to max" (Some max_int) (Intmath.sub_checked (-1) min_int);
  check int_opt_c "sub over max" None (Intmath.sub_checked 0 min_int);
  let q = max_int / 8 in
  check int_opt_c "mul at cap multiple" (Some (q * 8)) (Intmath.mul_checked q 8);
  check int_opt_c "mul past cap multiple" None (Intmath.mul_checked (q + 1) 8);
  check int_opt_c "mul min by one" (Some min_int) (Intmath.mul_checked min_int 1);
  check int_opt_c "mul min by minus one" None (Intmath.mul_checked min_int (-1));
  check int_opt_c "mul minus one by min" None (Intmath.mul_checked (-1) min_int);
  check int_opt_c "mul exact min" (Some min_int) (Intmath.mul_checked (min_int / 2) 2)

(* Reference semantics: an op fits iff the Bigint result converts back. *)
let prop_checked_vs_bigint =
  QCheck.Test.make ~name:"checked ops agree with the Bigint reference" ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let via_big f = B.to_int_opt (f (B.of_int a) (B.of_int b)) in
      Intmath.add_checked a b = via_big B.add
      && Intmath.sub_checked a b = via_big B.sub
      && Intmath.mul_checked a b = via_big B.mul)

(* ---------------- Num2 promotion at max_int/8-adjacent magnitudes ------ *)

(* Tier-shape assertions describe the *fast* tier, so pin the switch off
   for their duration — the suite must also pass under BSS_FORCE_EXACT=1
   (CI runs it both ways). *)
let test_promotion_boundary () =
  Num2.with_force_exact false @@ fun () ->
  let q = max_int / 8 in
  (* a product beyond max_int promotes and matches the Bigint value *)
  let x = Rat.mul_int (Rat.of_int q) 16 in
  check bool_c "product promoted" true (Num2.tier x = `Big);
  check Alcotest.string "product exact" (B.to_string (B.mul_int (B.of_int q) 16)) (Rat.to_string x);
  (* a sum crossing max_int promotes and matches the Bigint value *)
  let y = Rat.add (Rat.of_int (q * 7)) (Rat.of_int (q * 7)) in
  check bool_c "sum promoted" true (Num2.tier y = `Big);
  check Alcotest.string "sum exact" (B.to_string (B.mul_int (B.of_int (q * 7)) 2)) (Rat.to_string y);
  (* promoted intermediates demote back once the value fits again *)
  let z = Rat.div_int x 16 in
  check bool_c "quotient demoted" true (Num2.tier z = `Small);
  check rat_c "roundtrip through the big tier" (Rat.of_int q) z;
  (* min_int never lives on the fast tier (its negation cannot) *)
  check bool_c "min_int on big tier" true (Num2.tier (Rat.of_int min_int) = `Big);
  check bool_c "min_int+1 on fast tier" true (Num2.tier (Rat.of_int (min_int + 1)) = `Small);
  check Alcotest.string "neg min_int exact" (B.to_string (B.neg (B.of_int min_int)))
    (Rat.to_string (Rat.neg (Rat.of_int min_int)));
  (* comparisons against scaled integers survive guard overflow *)
  check int_c "compare_int overflowing positive k" (-1)
    (Rat.compare_int (Rat.of_ints 1 3) max_int);
  check int_c "compare_int overflowing negative k" 1
    (Rat.compare_int (Rat.of_ints 1 3) (min_int / 2));
  check int_c "compare_scaled via big fallback" 0
    (Rat.compare_scaled (Rat.of_ints max_int 3) 3 max_int)

(* Random near-cap arithmetic: two-tier results equal forced-exact results
   operation by operation. *)
let prop_ops_match_forced_exact =
  QCheck.Test.make ~name:"two-tier ops = forced-exact ops near the cap" ~count:300
    QCheck.(quad int int int int)
    (fun (a, b, c, d) ->
      Num2.with_force_exact false @@ fun () ->
      let nz v = if v = 0 then 1 else v in
      let x = Rat.of_ints a (nz b) and y = Rat.of_ints c (nz d) in
      let both op =
        let fast = op () in
        let exact = Num2.with_force_exact true op in
        Rat.equal fast exact && Rat.compare fast exact = 0
      in
      both (fun () -> Rat.add x y)
      && both (fun () -> Rat.sub x y)
      && both (fun () -> Rat.mul x y)
      && (Rat.is_zero y || both (fun () -> Rat.div x y))
      && both (fun () -> Rat.add_int x d)
      && both (fun () -> Rat.mul_int x c)
      && Rat.compare x y = Num2.with_force_exact true (fun () -> Rat.compare x y))

let test_force_exact_switch () =
  Num2.with_force_exact false @@ fun () ->
  let a = Rat.of_ints 3 4 in
  let b = Num2.with_force_exact true (fun () -> Rat.of_ints 3 4) in
  check bool_c "fast tier by default" true (Num2.tier a = `Small);
  check bool_c "forced to big tier" true (Num2.tier b = `Big);
  check bool_c "switch restored" false (Num2.force_exact_enabled ());
  check rat_c "equal across tiers" a b;
  check int_c "compare across tiers" 0 (Rat.compare a b);
  check bool_c "mixed-tier ordering" true (Rat.( < ) b (Rat.of_int 1))

(* ---------------- Instance.make cap interaction ---------------- *)

let test_instance_cap () =
  let cap = max_int / 8 in
  let inst = Instance.make ~m:2 ~setups:[| 1 |] ~jobs:[| (0, cap - 1) |] in
  check int_c "N at the cap" cap inst.Instance.total;
  (* the searches' largest breakpoint 2N still fits a native int *)
  check bool_c "2N fits" true (Intmath.mul_fits 2 inst.Instance.total);
  (* one unit over the cap is the typed rejection, not a wrap *)
  let field =
    match Instance.make ~m:2 ~setups:[| 1 |] ~jobs:[| (0, cap) |] with
    | _ -> None
    | exception Rerror.Error (Rerror.Invalid_input { field; _ }) -> Some field
  in
  check Alcotest.(option string) "over the cap rejected" (Some "total") field;
  (* the at-cap instance solves and certifies on both tiers *)
  let r = Solver.solve ~algorithm:Solver.Approx3_2 Variant.Nonpreemptive inst in
  check bool_c "at-cap schedule feasible" true
    (Checker.is_feasible Variant.Nonpreemptive inst r.Solver.schedule);
  let r' =
    Num2.with_force_exact true (fun () ->
        Solver.solve ~algorithm:Solver.Approx3_2 Variant.Nonpreemptive inst)
  in
  check rat_c "at-cap makespan matches forced-exact" (Schedule.makespan r.Solver.schedule)
    (Schedule.makespan r'.Solver.schedule)

let test_near_overflow_family () =
  for seed = 1 to 5 do
    let rng = Prng.create seed in
    let inst = Generator.near_overflow.Generator.generate rng ~m:4 ~n:8 in
    check bool_c "delta is promotion-sized" true (Instance.delta inst > 1_000_000_000);
    (* headroom for the fuzz mutations that double a class twice *)
    check bool_c "4N under the cap" true (inst.Instance.total <= max_int / 8 / 4)
  done

(* ---------------- differential: solves across every family ------------- *)

let two_tier_exact = Property.find "two-tier-exact"

let run_differential fam_name inst =
  match Property.check_instance two_tier_exact inst with
  | Property.Pass -> ()
  | Property.Skip msg -> Alcotest.failf "%s: two-tier-exact skipped: %s" fam_name msg
  | Property.Fail msg -> Alcotest.failf "%s: %s" fam_name msg

let test_differential_all_families () =
  List.iter
    (fun (fam : Generator.spec) ->
      List.iter
        (fun seed ->
          let rng = Prng.create (0x7ee + seed) in
          let m = 1 + Prng.int rng 4 in
          let inst = fam.Generator.generate rng ~m ~n:16 in
          run_differential fam.Generator.name inst)
        [ 1; 2; 3 ])
    Generator.all

let prop_differential_random =
  QCheck.Test.make ~name:"random two-tier solve = forced-exact solve" ~count:15
    QCheck.small_nat
    (fun seed ->
      let fams = Array.of_list Generator.all in
      let fam = fams.(seed mod Array.length fams) in
      let rng = Prng.create (0xd1ff + seed) in
      let inst = fam.Generator.generate rng ~m:(1 + Prng.int rng 6) ~n:(4 + Prng.int rng 24) in
      match Property.check_instance two_tier_exact inst with
      | Property.Pass -> true
      | Property.Skip msg | Property.Fail msg -> QCheck.Test.fail_report msg)

(* ---------------- flat CSR layout vs the per-class record view --------- *)

let random_instance seed =
  let fams = Array.of_list Generator.all in
  let fam = fams.(seed mod Array.length fams) in
  let rng = Prng.create (0xc5a + seed) in
  (fam, fam.Generator.generate rng ~m:(1 + Prng.int rng 6) ~n:(4 + Prng.int rng 30))

(* The pre-CSR view: job ids grouped by class, read straight off job_class
   in job order — exactly what the old [class_jobs] arrays held. *)
let reference_groups inst =
  let c = Instance.c inst and n = Instance.n inst in
  let groups = Array.make c [] in
  for j = n - 1 downto 0 do
    groups.(inst.Instance.job_class.(j)) <- j :: groups.(inst.Instance.job_class.(j))
  done;
  Array.map Array.of_list groups

let prop_flat_layout_equiv =
  QCheck.Test.make ~name:"CSR accessors match the record view" ~count:50 QCheck.small_nat
    (fun seed ->
      let _, inst = random_instance seed in
      let reference = reference_groups inst in
      let ok = ref true in
      for i = 0 to Instance.c inst - 1 do
        let want = reference.(i) in
        ok := !ok && Instance.jobs_of_class inst i = want;
        ok := !ok && Instance.class_size inst i = Array.length want;
        Array.iteri (fun k j -> ok := !ok && Instance.class_job inst i k = j) want;
        let seen = ref [] in
        Instance.iter_class_jobs (fun j -> seen := j :: !seen) inst i;
        ok := !ok && Array.of_list (List.rev !seen) = want;
        let folded = Instance.fold_class_jobs (fun acc j -> j :: acc) [] inst i in
        ok := !ok && Array.of_list (List.rev folded) = want
      done;
      (* offsets are a proper partition of the job ids *)
      ok := !ok && inst.Instance.class_off.(0) = 0;
      ok := !ok && inst.Instance.class_off.(Instance.c inst) = Instance.n inst;
      let all = List.sort compare (Array.to_list inst.Instance.class_job_ids) in
      ok := !ok && all = List.init (Instance.n inst) (fun j -> j);
      !ok)

(* Partition's fast comparisons vs the plain-Rat formulations they replace. *)
let prop_partition_equiv =
  QCheck.Test.make ~name:"Partition fast comparisons match the Rat reference" ~count:40
    QCheck.small_nat
    (fun seed ->
      let _, inst = random_instance seed in
      let t_min = Lower_bounds.t_min Variant.Nonpreemptive inst in
      let ok = ref true in
      List.iter
        (fun k ->
          let tee = Rat.mul (Rat.of_ints k 8) t_min in
          for i = 0 to Instance.c inst - 1 do
            let s = inst.Instance.setups.(i) in
            let ref_exp = Rat.( > ) (Rat.of_int (2 * s)) tee in
            ok := !ok && Partition.is_expensive inst tee i = ref_exp;
            (* m_i needs T > s_i, guaranteed by tee >= T_min >= s_i + 1 *)
            if k >= 8 then begin
              let slack = Rat.sub tee (Rat.of_int s) in
              let ref_mi =
                if ref_exp then
                  Rat.ceil_int (Rat.div (Rat.of_int inst.Instance.class_load.(i)) slack)
                else begin
                  let big = ref 0 and k_load = ref 0 in
                  Array.iter
                    (fun j ->
                      let tj = inst.Instance.job_time.(j) in
                      if Rat.( > ) (Rat.of_int (2 * tj)) tee then incr big
                      else if Rat.( > ) (Rat.of_int (2 * (s + tj))) tee then k_load := !k_load + tj)
                    (Instance.jobs_of_class inst i);
                  !big + Rat.ceil_int (Rat.div (Rat.of_int !k_load) slack)
                end
              in
              ok := !ok && Partition.m_i inst tee i = ref_mi
            end
          done;
          let ref_jplus =
            Array.of_list
              (List.filter
                 (fun j -> Rat.( > ) (Rat.of_int (2 * inst.Instance.job_time.(j))) tee)
                 (List.init (Instance.n inst) (fun j -> j)))
          in
          ok := !ok && Partition.j_plus inst tee = ref_jplus;
          let ref_kset =
            Array.of_list
              (List.filter
                 (fun j ->
                   let i = inst.Instance.job_class.(j) in
                   let tj = inst.Instance.job_time.(j) in
                   Rat.( <= ) (Rat.of_int (2 * tj)) tee
                   && Rat.( > ) (Rat.of_int (2 * (inst.Instance.setups.(i) + tj))) tee
                   && not (Rat.( > ) (Rat.of_int (2 * inst.Instance.setups.(i))) tee))
                 (List.init (Instance.n inst) (fun j -> j)))
          in
          ok := !ok && Partition.k_set inst tee = ref_kset)
        [ 5; 8; 9; 12 ];
      !ok)

(* ---------------- Gc: the comparison fast paths allocate nothing ------- *)

let test_zero_alloc_fast_paths () =
  Num2.with_force_exact false @@ fun () ->
  let a = Rat.of_ints 355 113 and b = Rat.of_ints 22 7 in
  let t = Rat.of_int 123_456_789 in
  let inst = Instance.make ~m:2 ~setups:[| 4; 2 |] ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 2) |] in
  let sink = ref 0 in
  let visit = fun j -> sink := !sink + j in
  (* warm up any lazy initialization before counting *)
  ignore (Sys.opaque_identity (Rat.compare a b));
  Instance.iter_class_jobs visit inst 0;
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    ignore (Sys.opaque_identity (Rat.compare a b));
    ignore (Sys.opaque_identity (Rat.compare_int t 17));
    ignore (Sys.opaque_identity (Rat.compare_int a 2));
    ignore (Sys.opaque_identity (Rat.compare_scaled a 3 10));
    ignore (Sys.opaque_identity (Rat.sign a));
    ignore (Sys.opaque_identity (Rat.is_zero b));
    ignore (Sys.opaque_identity (Rat.is_integer t));
    ignore (Sys.opaque_identity (Rat.equal a b));
    Instance.iter_class_jobs visit inst 0;
    Instance.iter_class_jobs visit inst 1
  done;
  let delta = Gc.minor_words () -. before in
  check (Alcotest.float 0.0) "minor words on comparison/iteration fast paths" 0.0 delta

let () =
  Alcotest.run "num2"
    [
      ( "overflow",
        [
          Alcotest.test_case "checked boundaries" `Quick test_checked_boundaries;
          Alcotest.test_case "promotion boundary" `Quick test_promotion_boundary;
          Alcotest.test_case "force-exact switch" `Quick test_force_exact_switch;
          Alcotest.test_case "instance cap" `Quick test_instance_cap;
          Alcotest.test_case "near-overflow family" `Quick test_near_overflow_family;
        ] );
      ( "differential",
        [ Alcotest.test_case "all families" `Quick test_differential_all_families ] );
      ("gc", [ Alcotest.test_case "zero-alloc fast paths" `Quick test_zero_alloc_fast_paths ]);
      qsuite "props"
        [
          prop_checked_vs_bigint;
          prop_ops_match_forced_exact;
          prop_differential_random;
          prop_flat_layout_equiv;
          prop_partition_equiv;
        ];
    ]
