(* Tests for the instance/schedule model, partitions, checkers, bounds. *)

open Bss_util
open Bss_instances

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let rat_c = Alcotest.testable Rat.pp Rat.equal

(* A small shared fixture: 2 classes, 3 machines.
   class 0: setup 4, jobs 5, 3;  class 1: setup 2, jobs 7, 1, 1. *)
let fixture () =
  Instance.make ~m:3 ~setups:[| 4; 2 |] ~jobs:[| (0, 5); (1, 7); (0, 3); (1, 1); (1, 1) |]

(* ---------------- Instance ---------------- *)

let test_instance_derived () =
  let inst = fixture () in
  check int_c "n" 5 (Instance.n inst);
  check int_c "c" 2 (Instance.c inst);
  check int_c "N" (4 + 2 + 5 + 3 + 7 + 1 + 1) inst.Instance.total;
  check int_c "P(C0)" 8 inst.Instance.class_load.(0);
  check int_c "P(C1)" 9 inst.Instance.class_load.(1);
  check int_c "tmax0" 5 inst.Instance.class_tmax.(0);
  check int_c "tmax1" 7 inst.Instance.class_tmax.(1);
  check int_c "smax" 4 inst.Instance.s_max;
  check int_c "tmax" 7 inst.Instance.t_max;
  check int_c "delta" 7 (Instance.delta inst);
  check int_c "class size 1" 3 (Instance.class_size inst 1);
  check bool_c "class jobs" true (Instance.jobs_of_class inst 0 = [| 0; 2 |])

module Rerror = Bss_resilience.Error

(* [make]/[of_string] report malformed input through the typed taxonomy:
   always [Invalid_input], with the field (and, for [of_string], the line)
   that identifies the offending datum. *)
let invalid_field f =
  match f () with
  | _ -> None
  | exception Rerror.Error (Rerror.Invalid_input { field; _ }) -> Some field

let invalid_loc f =
  match f () with
  | _ -> None
  | exception Rerror.Error (Rerror.Invalid_input { line; field; _ }) -> Some (line, field)

let str_opt_c = Alcotest.(option string)

let test_instance_validation () =
  let field f = invalid_field f in
  check str_opt_c "m=0" (Some "m") (field (fun () -> Instance.make ~m:0 ~setups:[| 1 |] ~jobs:[| (0, 1) |]));
  check str_opt_c "setup=0" (Some "setup")
    (field (fun () -> Instance.make ~m:1 ~setups:[| 0 |] ~jobs:[| (0, 1) |]));
  check str_opt_c "time=0" (Some "time")
    (field (fun () -> Instance.make ~m:1 ~setups:[| 1 |] ~jobs:[| (0, 0) |]));
  check str_opt_c "bad class" (Some "class")
    (field (fun () -> Instance.make ~m:1 ~setups:[| 1 |] ~jobs:[| (1, 1) |]));
  check str_opt_c "empty class" (Some "class")
    (field (fun () -> Instance.make ~m:1 ~setups:[| 1; 1 |] ~jobs:[| (0, 1) |]));
  check str_opt_c "no jobs" (Some "jobs") (field (fun () -> Instance.make ~m:1 ~setups:[| 1 |] ~jobs:[||]))

(* overflow-adjacent values: the searches need arithmetic headroom
   (breakpoints like 2N and 4(s_i+P_i)/3), so construction caps N *)
let test_instance_overflow_guard () =
  check str_opt_c "single near-max setup" (Some "total")
    (invalid_field (fun () -> Instance.make ~m:2 ~setups:[| max_int - 1 |] ~jobs:[| (0, 1) |]));
  check str_opt_c "sum wraps max_int" (Some "total")
    (invalid_field (fun () ->
         Instance.make ~m:2
           ~setups:[| max_int / 3; 1 |]
           ~jobs:[| (0, max_int / 3); (1, max_int / 3) |]));
  check str_opt_c "just over the cap" (Some "total")
    (invalid_field (fun () -> Instance.make ~m:2 ~setups:[| (max_int / 8) + 1 |] ~jobs:[| (0, 1) |]));
  (* 1e12-scale values stay accepted: the huge-value robustness suite
     depends on this headroom *)
  let big = 1_000_000_000_000 in
  let inst = Instance.make ~m:3 ~setups:[| big |] ~jobs:[| (0, big); (0, big) |] in
  check bool_c "1e12 accepted" true (inst.Instance.total = 3 * big)

let test_of_string_hardening () =
  check (Alcotest.option (Alcotest.pair (Alcotest.option int_c) Alcotest.string))
    "overflowing literal carries line+field"
    (Some (Some 3, "time"))
    (invalid_loc (fun () -> Instance.of_string "m 2\nsetups 3\njob 0 123456789012345678901234567890\n"));
  check (Alcotest.option (Alcotest.pair (Alcotest.option int_c) Alcotest.string)) "duplicate m line"
    (Some (Some 3, "m"))
    (invalid_loc (fun () -> Instance.of_string "m 2\nsetups 3\nm 4\njob 0 5\n"));
  check (Alcotest.option (Alcotest.pair (Alcotest.option int_c) Alcotest.string)) "duplicate setups line"
    (Some (Some 3, "setups"))
    (invalid_loc (fun () -> Instance.of_string "m 2\nsetups 3\nsetups 4\njob 0 5\n"));
  check (Alcotest.option (Alcotest.pair (Alcotest.option int_c) Alcotest.string)) "trailing garbage"
    (Some (Some 3, "line"))
    (invalid_loc (fun () -> Instance.of_string "m 2\nsetups 3\njob 0 5 9\n"));
  check (Alcotest.option (Alcotest.pair (Alcotest.option int_c) Alcotest.string)) "empty setups"
    (Some (Some 2, "setups"))
    (invalid_loc (fun () -> Instance.of_string "m 2\nsetups\njob 0 5\n"));
  check (Alcotest.option (Alcotest.pair (Alcotest.option int_c) Alcotest.string)) "bad number in m"
    (Some (Some 1, "m"))
    (invalid_loc (fun () -> Instance.of_string "m x\nsetups 3\njob 0 5\n"));
  check str_opt_c "missing m" (Some "m") (invalid_field (fun () -> Instance.of_string "setups 3\njob 0 5\n"));
  check str_opt_c "missing setups" (Some "setups")
    (invalid_field (fun () -> Instance.of_string "m 2\njob 0 5\n"));
  (* near-max values that parse but trip the headroom cap still carry the
     typed taxonomy end to end through of_string *)
  check str_opt_c "near-max value via of_string" (Some "total")
    (invalid_field (fun () ->
         Instance.of_string (Printf.sprintf "m 2\nsetups %d\njob 0 1\n" (max_int - 1))))

let test_instance_serialize_roundtrip () =
  let inst = fixture () in
  let inst' = Instance.of_string (Instance.to_string inst) in
  check bool_c "roundtrip" true (Instance.equal inst inst')

let test_instance_of_string_comments () =
  let inst = Instance.of_string "# a comment\nm 2\n\nsetups 3 4\njob 0 5\njob 1 6\n" in
  check int_c "m" 2 inst.Instance.m;
  check int_c "n" 2 (Instance.n inst)

(* ---------------- Schedule ---------------- *)

let test_schedule_accumulators () =
  let s = Schedule.create 2 in
  Schedule.add_setup s ~machine:0 ~cls:0 ~start:Rat.zero ~dur:(Rat.of_int 4);
  Schedule.add_work s ~machine:0 ~job:0 ~start:(Rat.of_int 4) ~dur:(Rat.of_int 5);
  Schedule.add_work s ~machine:1 ~job:1 ~start:(Rat.of_int 2) ~dur:(Rat.of_int 7);
  check rat_c "machine_end 0" (Rat.of_int 9) (Schedule.machine_end s 0);
  check rat_c "machine_end 1 (idle counts)" (Rat.of_int 9) (Schedule.machine_end s 1);
  check rat_c "machine_load 1 (busy only)" (Rat.of_int 7) (Schedule.machine_load s 1);
  check rat_c "makespan" (Rat.of_int 9) (Schedule.makespan s);
  check rat_c "total_load" (Rat.of_int 16) (Schedule.total_load s);
  check int_c "setup_count" 1 (Schedule.setup_count s ~cls:0);
  check int_c "total setups" 1 (Schedule.total_setup_count s);
  check bool_c "work_of_job" true (List.length (Schedule.work_of_job s 0) = 1)

let test_schedule_zero_dur_dropped () =
  let s = Schedule.create 1 in
  Schedule.add_work s ~machine:0 ~job:0 ~start:Rat.zero ~dur:Rat.zero;
  check bool_c "dropped" true (Schedule.segments s 0 = [])

let test_schedule_sorted_segments () =
  let s = Schedule.create 1 in
  Schedule.add_work s ~machine:0 ~job:1 ~start:(Rat.of_int 5) ~dur:Rat.one;
  Schedule.add_work s ~machine:0 ~job:0 ~start:Rat.zero ~dur:Rat.one;
  match Schedule.segments s 0 with
  | [ a; b ] ->
    check rat_c "first" Rat.zero a.Schedule.start;
    check rat_c "second" (Rat.of_int 5) b.Schedule.start
  | _ -> Alcotest.fail "expected two segments"

(* ---------------- Checker ---------------- *)

(* A feasible non-preemptive schedule for the fixture. *)
let feasible_schedule inst =
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  (* machine 0: setup0, job0, job2 *)
  Schedule.add_setup s ~machine:0 ~cls:0 ~start:(r 0) ~dur:(r 4);
  Schedule.add_work s ~machine:0 ~job:0 ~start:(r 4) ~dur:(r 5);
  Schedule.add_work s ~machine:0 ~job:2 ~start:(r 9) ~dur:(r 3);
  (* machine 1: setup1, job1 *)
  Schedule.add_setup s ~machine:1 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:1 ~job:1 ~start:(r 2) ~dur:(r 7);
  (* machine 2: setup1, job3, job4 *)
  Schedule.add_setup s ~machine:2 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:2 ~job:3 ~start:(r 2) ~dur:(r 1);
  Schedule.add_work s ~machine:2 ~job:4 ~start:(r 3) ~dur:(r 1);
  s

let test_checker_accepts_feasible () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  List.iter (fun v -> check bool_c (Variant.to_string v) true (Checker.is_feasible v inst s)) Variant.all

let violations variant inst s =
  match Checker.check variant inst s with
  | Ok () -> []
  | Error vs -> vs

let test_checker_overlap () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  (* Add an overlapping rogue piece of job 0 on machine 0. *)
  Schedule.add_work s ~machine:0 ~job:0 ~start:(Rat.of_int 8) ~dur:Rat.one;
  let vs = violations Variant.Splittable inst s in
  check bool_c "overlap reported" true
    (List.exists (function Checker.Overlap _ -> true | _ -> false) vs);
  check bool_c "volume reported" true
    (List.exists (function Checker.Wrong_volume _ -> true | _ -> false) vs)

let test_checker_missing_setup () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  Schedule.add_work s ~machine:0 ~job:0 ~start:(r 0) ~dur:(r 5);
  let vs = violations Variant.Splittable inst s in
  check bool_c "missing setup" true
    (List.exists (function Checker.Missing_setup { job = 0; _ } -> true | _ -> false) vs)

let test_checker_switch_needs_setup () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  Schedule.add_setup s ~machine:0 ~cls:0 ~start:(r 0) ~dur:(r 4);
  Schedule.add_work s ~machine:0 ~job:0 ~start:(r 4) ~dur:(r 5);
  (* class switch without setup: job 1 is class 1 *)
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 9) ~dur:(r 7);
  let vs = violations Variant.Splittable inst s in
  check bool_c "switch flagged" true
    (List.exists (function Checker.Missing_setup { job = 1; _ } -> true | _ -> false) vs)

let test_checker_same_class_idle_ok () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  Schedule.add_setup s ~machine:0 ~cls:0 ~start:(r 0) ~dur:(r 4);
  Schedule.add_work s ~machine:0 ~job:0 ~start:(r 4) ~dur:(r 5);
  (* idle gap, then more class-0 work without a new setup: allowed *)
  Schedule.add_work s ~machine:0 ~job:2 ~start:(r 20) ~dur:(r 3);
  Schedule.add_setup s ~machine:1 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:1 ~job:1 ~start:(r 2) ~dur:(r 7);
  Schedule.add_work s ~machine:1 ~job:3 ~start:(r 9) ~dur:(r 1);
  Schedule.add_work s ~machine:1 ~job:4 ~start:(r 10) ~dur:(r 1);
  check bool_c "feasible" true (Checker.is_feasible Variant.Nonpreemptive inst s)

let test_checker_setup_duration () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  Schedule.add_setup s ~machine:0 ~cls:0 ~start:(r 0) ~dur:(r 3) (* should be 4 *);
  Schedule.add_work s ~machine:0 ~job:0 ~start:(r 3) ~dur:(r 5);
  let vs = violations Variant.Splittable inst s in
  check bool_c "bad setup duration" true
    (List.exists (function Checker.Bad_setup_duration { cls = 0; _ } -> true | _ -> false) vs)

let test_checker_self_parallel () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  (* job 1 (t=7) split across two machines in overlapping time *)
  Schedule.add_setup s ~machine:0 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 2) ~dur:(r 4);
  Schedule.add_setup s ~machine:1 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:1 ~job:1 ~start:(r 2) ~dur:(r 3);
  (* other jobs placed feasibly far away on machine 2 *)
  Schedule.add_setup s ~machine:2 ~cls:0 ~start:(r 0) ~dur:(r 4);
  Schedule.add_work s ~machine:2 ~job:0 ~start:(r 4) ~dur:(r 5);
  Schedule.add_work s ~machine:2 ~job:2 ~start:(r 9) ~dur:(r 3);
  Schedule.add_setup s ~machine:2 ~cls:1 ~start:(r 12) ~dur:(r 2);
  Schedule.add_work s ~machine:2 ~job:3 ~start:(r 14) ~dur:(r 1);
  Schedule.add_work s ~machine:2 ~job:4 ~start:(r 15) ~dur:(r 1);
  let vs_pmtn = violations Variant.Preemptive inst s in
  check bool_c "self-parallel flagged for pmtn" true
    (List.exists (function Checker.Self_parallel { job = 1; _ } -> true | _ -> false) vs_pmtn);
  check bool_c "fine for splittable" true (Checker.is_feasible Variant.Splittable inst s)

let test_checker_preemption_rules () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  (* job 1 preempted on one machine with a gap: ok for pmtn, not for nonp *)
  Schedule.add_setup s ~machine:0 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 2) ~dur:(r 3);
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 6) ~dur:(r 4);
  Schedule.add_work s ~machine:0 ~job:3 ~start:(r 10) ~dur:(r 1);
  Schedule.add_work s ~machine:0 ~job:4 ~start:(r 11) ~dur:(r 1);
  Schedule.add_setup s ~machine:1 ~cls:0 ~start:(r 0) ~dur:(r 4);
  Schedule.add_work s ~machine:1 ~job:0 ~start:(r 4) ~dur:(r 5);
  Schedule.add_work s ~machine:1 ~job:2 ~start:(r 9) ~dur:(r 3);
  check bool_c "pmtn ok" true (Checker.is_feasible Variant.Preemptive inst s);
  let vs = violations Variant.Nonpreemptive inst s in
  check bool_c "nonp flags" true
    (List.exists (function Checker.Not_contiguous { job = 1; _ } -> true | _ -> false) vs)

let test_checker_makespan_bound () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  check bool_c "within 12" true
    (Checker.is_feasible ~makespan_bound:(Rat.of_int 12) Variant.Nonpreemptive inst s);
  let vs =
    match Checker.check ~makespan_bound:(Rat.of_int 11) Variant.Nonpreemptive inst s with
    | Ok () -> []
    | Error vs -> vs
  in
  check bool_c "exceeds 11" true
    (List.exists (function Checker.Makespan_exceeded _ -> true | _ -> false) vs)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* every violation message locates itself: machine index + exact time *)
let test_checker_message_coordinates () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  (* setup-less work at a non-integral time on machine 1 *)
  Schedule.add_work s ~machine:1 ~job:0 ~start:(Rat.of_ints 7 2) ~dur:(Rat.of_int 5);
  let vs = violations Variant.Splittable inst s in
  let msg = String.concat "; " (List.map Checker.violation_to_string vs) in
  check bool_c "missing-setup names machine" true (contains msg "machine 1");
  check bool_c "missing-setup names time" true (contains msg "t=7/2");
  (* non-contiguous job: message points at the piece breaking contiguity *)
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  Schedule.add_setup s ~machine:0 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 2) ~dur:(r 3);
  Schedule.add_setup s ~machine:2 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:2 ~job:1 ~start:(r 9) ~dur:(r 4);
  let vs = violations Variant.Nonpreemptive inst s in
  let nc =
    List.find_map
      (function Checker.Not_contiguous _ as v -> Some (Checker.violation_to_string v) | _ -> None)
      vs
  in
  match nc with
  | None -> Alcotest.fail "expected Not_contiguous"
  | Some msg ->
    check bool_c "not-contiguous names machine" true (contains msg "machine 2");
    check bool_c "not-contiguous names time" true (contains msg "t=9")

(* ---------------- Partition ---------------- *)

(* Partition fixture: setups 10, 6, 2, 1; loads arranged. T = 16. *)
let partition_fixture () =
  Instance.make ~m:4
    ~setups:[| 10; 9; 4; 1 |]
    ~jobs:
      [|
        (0, 10); (0, 2) (* P(C0)=12, s0=10: expensive, s+P=22 >= T: I+exp *);
        (1, 3) (* P(C1)=3, s1=9: expensive, s+P=12 in (3T/4=12, T)? 12 is not > 12: I-exp *);
        (2, 6); (2, 2) (* s2=4: cheap, T/4=4 <= 4 <= 8: I+chp *);
        (3, 8); (3, 1) (* s3=1 < 4: I-chp; big jobs: 1+8=9 > 8: yes job5 *);
      |]

let test_partition_sets () =
  let inst = partition_fixture () in
  let tee = Rat.of_int 16 in
  let p = Partition.make inst tee in
  check bool_c "exp" true (p.Partition.exp = [ 0; 1 ]);
  check bool_c "chp" true (p.Partition.chp = [ 2; 3 ]);
  check bool_c "exp_plus" true (p.Partition.exp_plus = [ 0 ]);
  check bool_c "exp_zero" true (p.Partition.exp_zero = []);
  check bool_c "exp_minus" true (p.Partition.exp_minus = [ 1 ]);
  check bool_c "chp_plus" true (p.Partition.chp_plus = [ 2 ]);
  check bool_c "chp_minus" true (p.Partition.chp_minus = [ 3 ]);
  check bool_c "chp_star" true (p.Partition.chp_star = [ 3 ]);
  check bool_c "big jobs of 3" true (p.Partition.big_jobs.(3) = [| 5 |])

let test_partition_zero_case () =
  (* s + P strictly between 3T/4 and T -> I0exp *)
  let inst = Instance.make ~m:2 ~setups:[| 9 |] ~jobs:[| (0, 4) |] in
  let p = Partition.make inst (Rat.of_int 16) in
  check bool_c "exp_zero" true (p.Partition.exp_zero = [ 0 ])

let test_partition_machine_numbers () =
  let inst = partition_fixture () in
  let tee = Rat.of_int 16 in
  (* class 0: P=12, T-s=6: alpha=2, alpha'=2; beta=ceil(24/16)=2, beta'=1 *)
  check int_c "alpha0" 2 (Partition.alpha inst tee 0);
  check int_c "alpha'0" 2 (Partition.alpha' inst tee 0);
  check int_c "beta0" 2 (Partition.beta inst tee 0);
  check int_c "beta'0" 1 (Partition.beta' inst tee 0);
  (* gamma for class 0: P - beta' T/2 = 12-8 = 4 <= T - s = 6 -> max(beta',1)=1 *)
  check int_c "gamma0" 1 (Partition.gamma inst tee 0);
  (* class 3: alpha = ceil(9/15) = 1 *)
  check int_c "alpha3" 1 (Partition.alpha inst tee 3);
  check int_c "alpha'3" 0 (Partition.alpha' inst tee 3)

let test_partition_jplus_kset () =
  let inst = partition_fixture () in
  let tee = Rat.of_int 16 in
  (* J+ = { t_j > 8 } = { job0? t=10 yes } *)
  check bool_c "J+" true (Partition.j_plus inst tee = [| 0 |]);
  (* K: cheap classes, t_j <= 8 and s_i + t_j > 8:
     class2 (s=4): jobs 6 (4+6=10>8 yes), 2 (4+2=6 no); class3 (s=1): 8 (9>8 yes), 1 no *)
  check bool_c "K" true (Partition.k_set inst tee = [| 3; 5 |])

let test_partition_m_i () =
  let inst = partition_fixture () in
  let tee = Rat.of_int 16 in
  (* class 0 expensive: m_0 = alpha = 2 *)
  check int_c "m_0" 2 (Partition.m_i inst tee 0);
  (* class 2 cheap: |C2 ∩ J+| = 0, K load = 6, T-s = 12 -> ceil(6/12)=1 *)
  check int_c "m_2" 1 (Partition.m_i inst tee 2);
  (* class 3 cheap: no J+, K load 8, T-s=15 -> 1 *)
  check int_c "m_3" 1 (Partition.m_i inst tee 3)

let test_partition_expensive_threshold () =
  let inst = Instance.make ~m:1 ~setups:[| 5 |] ~jobs:[| (0, 1) |] in
  (* s=5: expensive iff s > T/2, i.e. T < 10 *)
  check bool_c "T=9 expensive" true (Partition.is_expensive inst (Rat.of_int 9) 0);
  check bool_c "T=10 cheap" false (Partition.is_expensive inst (Rat.of_int 10) 0);
  check bool_c "T=19/2 expensive" true (Partition.is_expensive inst (Rat.of_ints 19 2) 0)

(* ---------------- Lower bounds ---------------- *)

let test_lower_bounds () =
  let inst = fixture () in
  (* N = 23, m = 3 -> 23/3; setup+tmax: max(4+5, 2+7) = 9 *)
  check rat_c "volume" (Rat.of_ints 23 3) (Lower_bounds.volume_bound inst);
  check int_c "setup+tmax" 9 (Lower_bounds.setup_plus_tmax inst);
  check rat_c "tmin pmtn" (Rat.of_int 9) (Lower_bounds.t_min Variant.Preemptive inst);
  check rat_c "tmin nonp" (Rat.of_int 9) (Lower_bounds.t_min Variant.Nonpreemptive inst);
  check rat_c "tmin split" (Rat.of_ints 23 3) (Lower_bounds.t_min Variant.Splittable inst)

(* ---------------- Render / metrics ---------------- *)

let test_render_nonempty () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  let g = Render.gantt ~width:40 ~guides:[ ("T", Rat.of_int 12) ] inst s in
  check bool_c "has rows" true (List.length (String.split_on_char '\n' g) >= 4);
  let summary = Render.machine_summary inst s in
  check bool_c "summary rows" true (List.length (String.split_on_char '\n' summary) >= 3)

let test_svg_render () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  let doc = Render.svg ~guides:[ ("T", Rat.of_int 12) ] inst s in
  check bool_c "starts svg" true (String.length doc > 10 && String.sub doc 0 4 = "<svg");
  check bool_c "ends svg" true
    (let t = String.trim doc in
     String.sub t (String.length t - 6) 6 = "</svg>");
  (* 8 segments -> at least 8 rects; 3 setups hatched -> 3 more *)
  let count sub =
    let rec go i acc =
      match String.index_from_opt doc i sub.[0] with
      | None -> acc
      | Some j ->
        if j + String.length sub <= String.length doc && String.sub doc j (String.length sub) = sub then
          go (j + 1) (acc + 1)
        else go (j + 1) acc
    in
    go 0 0
  in
  check bool_c "rect count" true (count "<rect" >= 11);
  check bool_c "guide line" true (count "stroke-dasharray" = 1);
  (* deterministic *)
  check bool_c "deterministic" true (String.equal doc (Render.svg ~guides:[ ("T", Rat.of_int 12) ] inst s))

let test_metrics () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  let m = Metrics.compute inst s in
  check rat_c "makespan" (Rat.of_int 12) m.Metrics.makespan;
  check int_c "setups" 3 m.Metrics.setup_count;
  check rat_c "setup time" (Rat.of_int 8) m.Metrics.total_setup_time;
  check int_c "preemptions" 0 m.Metrics.preemption_count;
  check int_c "machines used" 3 m.Metrics.machines_used;
  check bool_c "ratio vs lb >= 1" true (Metrics.ratio_vs (Lower_bounds.lower_bound Variant.Nonpreemptive inst) m >= 1.0)

(* ---------------- Trace ---------------- *)

let test_trace_events_ordered () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  let evs = Trace.events inst s in
  (* 8 segments -> 16 events, sorted by time with ends before starts *)
  check int_c "count" 16 (List.length evs);
  let rec sorted = function
    | a :: (b :: _ as rest) -> Rat.( <= ) a.Trace.time b.Trace.time && sorted rest
    | _ -> true
  in
  check bool_c "time-sorted" true (sorted evs);
  (* renders without blowing up *)
  check bool_c "printable" true (String.length (Format.asprintf "%a" Trace.pp_events evs) > 0)

let test_trace_completions () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  let done_at = Trace.completion_times inst s in
  check rat_c "job 0" (Rat.of_int 9) done_at.(0);
  check rat_c "job 2" (Rat.of_int 12) done_at.(2);
  check rat_c "job 4" (Rat.of_int 4) done_at.(4);
  (* flow time = sum of completions *)
  check rat_c "flow" (Rat.of_int (9 + 9 + 12 + 3 + 4)) (Trace.total_flow_time inst s)

(* at equal time: all ends precede all starts, then machine order *)
let test_trace_tie_breaking () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  let evs = Trace.events inst s in
  let at_4 = List.filter (fun e -> Rat.equal e.Trace.time (Rat.of_int 4)) evs in
  let shape =
    List.map
      (fun e ->
        match e.Trace.kind with
        | Trace.Setup_end c -> ("setup_end", c, e.Trace.machine)
        | Trace.Job_end j -> ("job_end", j, e.Trace.machine)
        | Trace.Setup_start c -> ("setup_start", c, e.Trace.machine)
        | Trace.Job_start j -> ("job_start", j, e.Trace.machine))
      at_4
  in
  (* machine 0's setup ends and machine 2's job 4 ends before machine 0's
     job 0 starts; the two ends order by machine *)
  Alcotest.(check (list (triple string int int)))
    "t=4 order"
    [ ("setup_end", 0, 0); ("job_end", 4, 2); ("job_start", 0, 0) ]
    shape

(* flow time on a preemptive schedule: a job's completion is the end of
   its last piece, counted once *)
let test_trace_flow_preemptive () =
  let inst = fixture () in
  let s = Schedule.create inst.Instance.m in
  let r = Rat.of_int in
  Schedule.add_setup s ~machine:0 ~cls:1 ~start:(r 0) ~dur:(r 2);
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 2) ~dur:(r 3);
  Schedule.add_work s ~machine:0 ~job:3 ~start:(r 5) ~dur:(r 1);
  Schedule.add_work s ~machine:0 ~job:1 ~start:(r 6) ~dur:(r 4);
  let done_at = Trace.completion_times inst s in
  check rat_c "job 1 completes at its last piece" (r 10) done_at.(1);
  check rat_c "job 3" (r 6) done_at.(3);
  (* unscheduled jobs contribute zero, preempted job counts once *)
  check rat_c "flow" (r 16) (Trace.total_flow_time inst s)

let test_trace_csv () =
  let inst = fixture () in
  let s = feasible_schedule inst in
  let csv = Trace.to_csv inst s in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  check int_c "header + 8 segments" 9 (List.length lines);
  check bool_c "header" true (List.hd lines = "machine,start,duration,kind,id,class");
  check bool_c "has setup row" true (List.exists (fun l -> l = "0,0,4,setup,0,0") lines);
  check bool_c "has work row" true (List.exists (fun l -> l = "0,4,5,work,0,0") lines)

(* ---------------- Property tests ---------------- *)

(* Random instances generator for property tests. *)
let gen_instance =
  QCheck2.Gen.(
    let* c = int_range 1 5 in
    let* m = int_range 1 6 in
    let* setups = array_size (return c) (int_range 1 20) in
    let* extra = list_size (int_range 0 15) (pair (int_range 0 (c - 1)) (int_range 1 25)) in
    (* ensure every class non-empty *)
    let* base = array_size (return c) (int_range 1 25) in
    let jobs = Array.to_list (Array.mapi (fun i t -> (i, t)) base) @ extra in
    return (Instance.make ~m ~setups ~jobs:(Array.of_list jobs)))

let prop_lower_bound_sane =
  QCheck2.Test.make ~name:"Tmin <= N and Tmin >= smax-ish" ~count:200 gen_instance (fun inst ->
      List.for_all
        (fun v ->
          let tmin = Lower_bounds.t_min v inst in
          Rat.( <= ) tmin (Rat.of_int inst.Instance.total)
          && Rat.( >= ) tmin (Rat.of_ints inst.Instance.total inst.Instance.m))
        Variant.all)

let prop_partition_is_partition =
  QCheck2.Test.make ~name:"partition covers classes exactly once" ~count:200
    QCheck2.Gen.(pair gen_instance (int_range 5 60))
    (fun (inst, t) ->
      let tee = Rat.of_int t in
      let p = Partition.make inst tee in
      let all = List.sort compare (p.Partition.exp @ p.Partition.chp) in
      let refined =
        List.sort compare
          (p.Partition.exp_plus @ p.Partition.exp_zero @ p.Partition.exp_minus @ p.Partition.chp_plus
         @ p.Partition.chp_minus)
      in
      all = List.init (Instance.c inst) (fun i -> i) && refined = all)

let prop_alpha_beta_relations =
  QCheck2.Test.make ~name:"Lemma 1: alpha >= beta for expensive, alpha >= alpha'" ~count:200
    QCheck2.Gen.(pair gen_instance (int_range 2 60))
    (fun (inst, t) ->
      let tee = Rat.of_int t in
      List.for_all
        (fun i ->
          if inst.Instance.setups.(i) >= t then true
          else begin
            let a = Partition.alpha inst tee i and a' = Partition.alpha' inst tee i in
            let b = Partition.beta inst tee i and b' = Partition.beta' inst tee i in
            a >= a' && b >= b' && a >= 1 && b >= 1
            && ((not (Partition.is_expensive inst tee i)) || a >= b)
            && Partition.gamma inst tee i <= b
          end)
        (List.init (Instance.c inst) (fun i -> i)))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "bss_instances"
    [
      ( "instance",
        [
          Alcotest.test_case "derived" `Quick test_instance_derived;
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "serialize roundtrip" `Quick test_instance_serialize_roundtrip;
          Alcotest.test_case "parse comments" `Quick test_instance_of_string_comments;
          Alcotest.test_case "overflow guard" `Quick test_instance_overflow_guard;
          Alcotest.test_case "of_string hardening" `Quick test_of_string_hardening;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "accumulators" `Quick test_schedule_accumulators;
          Alcotest.test_case "zero dur dropped" `Quick test_schedule_zero_dur_dropped;
          Alcotest.test_case "sorted segments" `Quick test_schedule_sorted_segments;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts feasible" `Quick test_checker_accepts_feasible;
          Alcotest.test_case "overlap" `Quick test_checker_overlap;
          Alcotest.test_case "missing setup" `Quick test_checker_missing_setup;
          Alcotest.test_case "switch needs setup" `Quick test_checker_switch_needs_setup;
          Alcotest.test_case "same class after idle ok" `Quick test_checker_same_class_idle_ok;
          Alcotest.test_case "setup duration" `Quick test_checker_setup_duration;
          Alcotest.test_case "self parallel" `Quick test_checker_self_parallel;
          Alcotest.test_case "preemption rules" `Quick test_checker_preemption_rules;
          Alcotest.test_case "makespan bound" `Quick test_checker_makespan_bound;
          Alcotest.test_case "message coordinates" `Quick test_checker_message_coordinates;
        ] );
      ( "partition",
        [
          Alcotest.test_case "sets" `Quick test_partition_sets;
          Alcotest.test_case "zero case" `Quick test_partition_zero_case;
          Alcotest.test_case "machine numbers" `Quick test_partition_machine_numbers;
          Alcotest.test_case "J+/K" `Quick test_partition_jplus_kset;
          Alcotest.test_case "m_i" `Quick test_partition_m_i;
          Alcotest.test_case "expensive threshold" `Quick test_partition_expensive_threshold;
        ] );
      ("lower-bounds", [ Alcotest.test_case "fixture" `Quick test_lower_bounds ]);
      ( "trace",
        [
          Alcotest.test_case "events ordered" `Quick test_trace_events_ordered;
          Alcotest.test_case "tie breaking" `Quick test_trace_tie_breaking;
          Alcotest.test_case "completions" `Quick test_trace_completions;
          Alcotest.test_case "flow preemptive" `Quick test_trace_flow_preemptive;
          Alcotest.test_case "csv" `Quick test_trace_csv;
        ] );
      ( "render-metrics",
        [
          Alcotest.test_case "render" `Quick test_render_nonempty;
          Alcotest.test_case "svg" `Quick test_svg_render;
          Alcotest.test_case "metrics" `Quick test_metrics;
        ] );
      qsuite "props" [ prop_lower_bound_sane; prop_partition_is_partition; prop_alpha_beta_relations ];
    ]
