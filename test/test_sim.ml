(* Unit suite for lib/sim: the shrinker on pure predicates (no service
   runs), schedule JSON round trips, census determinism, a clean
   restricted sweep, and the deliberate-break end-to-end path —
   detection, shrinking a two-fault schedule to one fault at occurrence
   0, and bit-identical replay of the reproducer artifact. *)

open Bss_util
module Schedule = Bss_sim.Schedule
module Harness = Bss_sim.Harness
module Chaos = Bss_resilience.Chaos

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int

let tmp_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "bss-sim-test-%d" (Unix.getpid ()))
     in
     (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
     dir)

(* ---------------- minimize on pure predicates ---------------- *)

let fault site h action = (site, h, action)

let test_minimize_drops_irrelevant () =
  let schedule =
    [ fault "a" 5 Chaos.Raise; fault "b" 3 Chaos.Crash; fault "c" 1 Chaos.Raise ]
  in
  let violates s = List.exists (fun (site, _, _) -> site = "a") s in
  let shrunk = Harness.minimize ~budget:64 ~violates schedule in
  check bool_c "only the relevant fault survives, at occurrence 0" true
    (shrunk = [ fault "a" 0 Chaos.Raise ])

let test_minimize_respects_occurrence_floor () =
  (* The fault only matters from occurrence 4 on: direct-to-0 fails, the
     halving descent must stop exactly at the floor. *)
  let violates = function [ ("a", h, _) ] -> h >= 4 | _ -> false in
  let shrunk = Harness.minimize ~budget:64 ~violates [ fault "a" 9 Chaos.Raise ] in
  check bool_c "halved down to the floor" true (shrunk = [ fault "a" 4 Chaos.Raise ])

let test_minimize_budget_exhausted () =
  let schedule = [ fault "a" 5 Chaos.Raise; fault "b" 3 Chaos.Raise ] in
  let shrunk = Harness.minimize ~budget:0 ~violates:(fun _ -> true) schedule in
  check bool_c "no budget, no change" true (shrunk = schedule)

let test_minimize_result_still_violates () =
  let violates s = List.length s >= 2 in
  let schedule = [ fault "a" 1 Chaos.Raise; fault "b" 2 Chaos.Raise; fault "c" 3 Chaos.Raise ] in
  let shrunk = Harness.minimize ~budget:64 ~violates schedule in
  check int_c "shrunk to the minimal violating size" 2 (List.length shrunk);
  check bool_c "result violates" true (violates shrunk)

(* ---------------- schedule JSON ---------------- *)

let test_schedule_json_roundtrip () =
  let schedule =
    [ fault "service.solve" 0 Chaos.Raise;
      fault "journal.seal.after" 3 Chaos.Crash;
      fault "net.read" 2 (Chaos.Stall 10) ]
  in
  match Json.parse (Schedule.to_json schedule) with
  | Error e -> Alcotest.failf "rendered schedule does not parse: %s" e
  | Ok v -> (
    match Schedule.of_json v with
    | Ok parsed -> check bool_c "round trip" true (parsed = schedule)
    | Error e -> Alcotest.failf "round trip failed: %s" e)

let test_schedule_json_rejects () =
  let parse s =
    match Json.parse s with
    | Ok v -> Schedule.of_json v
    | Error e -> Error e
  in
  let is_error = function Error _ -> true | Ok _ -> false in
  check bool_c "unknown action" true
    (is_error (parse {|[{"site":"a","occurrence":0,"action":"explode"}]|}));
  check bool_c "negative occurrence" true
    (is_error (parse {|[{"site":"a","occurrence":-1,"action":"raise"}]|}))

(* ---------------- census ---------------- *)

let config () = { Harness.default_config with dir = Lazy.force tmp_dir }

let test_census_deterministic () =
  let cfg = config () in
  let a = Harness.census cfg and b = Harness.census cfg in
  check bool_c "census replay identical" true (a = b);
  let hits site = Option.value ~default:0 (List.assoc_opt site a) in
  check bool_c "journal write crash point counted" true (hits "journal.write.before" > 0);
  check bool_c "journal seal crash point counted" true (hits "journal.seal.after" > 0);
  check int_c "one solve opportunity per request" cfg.Harness.requests (hits "service.solve")

(* ---------------- sweeps ---------------- *)

let test_sweep_clean_on_admit_faults () =
  let cfg = { (config ()) with sites = [ "service.admit" ] } in
  let sweep = Harness.explore cfg in
  let admit_hits =
    Option.value ~default:0 (List.assoc_opt "service.admit" sweep.Harness.census)
  in
  check bool_c "site occurs" true (admit_hits > 0);
  (* service.admit is crashable, so every occurrence enumerates Raise and
     Crash *)
  check int_c "every single-fault schedule ran" (2 * admit_hits) sweep.Harness.explored;
  check int_c "no invariant violated" 0 sweep.Harness.violated;
  check bool_c "no reproducer" true (sweep.Harness.reproducer = None)

let test_break_invariant_shrinks_two_faults () =
  (* A two-fault schedule where only the journal.seal fault matters: the
     shrinker must drop the decoy solve fault and lower the survivor to
     occurrence 0, re-running the real service loop at every step. *)
  let cfg = { (config ()) with break_invariant = Some "journal.seal" } in
  let violates schedule =
    let r =
      {
        Harness.r_requests = cfg.Harness.requests;
        r_seed = cfg.Harness.seed;
        r_break = cfg.Harness.break_invariant;
        r_schedule = schedule;
        r_violations = [];
      }
    in
    (Harness.replay ~dir:cfg.Harness.dir r).Harness.r_violations <> []
  in
  let schedule =
    [ fault "service.solve" 7 Chaos.Raise; fault "journal.seal.after" 1 Chaos.Raise ]
  in
  check bool_c "the two-fault schedule violates" true (violates schedule);
  let shrunk = Harness.minimize ~budget:64 ~violates schedule in
  check bool_c "shrunk to the minimal schedule" true
    (shrunk = [ fault "journal.seal.after" 0 Chaos.Raise ])

let test_reproducer_roundtrip_and_replay_identity () =
  let cfg =
    { (config ()) with sites = [ "journal.seal" ]; break_invariant = Some "journal.seal" }
  in
  let sweep = Harness.explore cfg in
  check bool_c "every seal fault violates under the hook" true
    (sweep.Harness.violated = sweep.Harness.explored && sweep.Harness.violated > 0);
  match sweep.Harness.reproducer with
  | None -> Alcotest.fail "expected a reproducer"
  | Some r -> (
    check int_c "shrunk to one fault" 1 (List.length r.Harness.r_schedule);
    let json = Harness.reproducer_json r in
    match Harness.reproducer_of_string json with
    | Error e -> Alcotest.failf "reproducer parse failed: %s" e
    | Ok parsed ->
      check bool_c "schedule round trips" true (parsed.Harness.r_schedule = r.Harness.r_schedule);
      check bool_c "hook round trips" true (parsed.Harness.r_break = r.Harness.r_break);
      check bool_c "parsed violations empty until replayed" true
        (parsed.Harness.r_violations = []);
      let replayed = Harness.replay ~dir:cfg.Harness.dir parsed in
      check bool_c "replay is bit-identical" true (Harness.reproducer_json replayed = json))

let () =
  Alcotest.run "bss_sim"
    [
      ( "minimize",
        [
          Alcotest.test_case "drops irrelevant faults" `Quick test_minimize_drops_irrelevant;
          Alcotest.test_case "respects occurrence floor" `Quick
            test_minimize_respects_occurrence_floor;
          Alcotest.test_case "budget exhausted" `Quick test_minimize_budget_exhausted;
          Alcotest.test_case "result still violates" `Quick test_minimize_result_still_violates;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "JSON round trip" `Quick test_schedule_json_roundtrip;
          Alcotest.test_case "rejects malformed JSON" `Quick test_schedule_json_rejects;
        ] );
      ( "harness",
        [
          Alcotest.test_case "census deterministic" `Slow test_census_deterministic;
          Alcotest.test_case "clean sweep on admit faults" `Slow test_sweep_clean_on_admit_faults;
          Alcotest.test_case "shrinks a two-fault schedule" `Slow
            test_break_invariant_shrinks_two_faults;
          Alcotest.test_case "reproducer round trip and replay identity" `Slow
            test_reproducer_roundtrip_and_replay_identity;
        ] );
    ]
