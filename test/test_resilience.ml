(* Tests for the resilience layer: the disabled guard path must be free
   (no allocation), budgets and deadlines must convert to typed errors,
   chaos plans must be deterministic, and — the acceptance criterion of
   the layer — every injected fault must drive the degradation ladder to
   the expected rung while still producing a checker-feasible schedule. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_resilience
module Probe = Bss_obs.Probe

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* a deterministic instance small enough to be fast but big enough that
   the 3/2 searches need several dual/bound evaluations *)
let inst =
  Instance.make ~m:4
    ~setups:[| 3; 1; 4; 2; 5; 1 |]
    ~jobs:(Array.init 24 (fun j -> (j mod 6, 1 + (j * 7 mod 13))))

let eps = Rat.of_ints 1 4
let three_half = Rat.of_ints 3 2

(* ---------------- disabled path ---------------- *)

(* With no guard installed and no chaos armed, tick/point/fire read one
   ref each and return — same zero-cost discipline as the probe layer. *)
let test_disabled_no_alloc () =
  assert (not (Guard.active ()));
  assert (not (Chaos.armed ()));
  for _ = 1 to 128 do
    Guard.tick "warmup";
    Guard.point "warmup"
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Guard.tick "noop.site";
    Guard.point "noop.site";
    Chaos.fire "noop.site"
  done;
  let delta = Gc.minor_words () -. before in
  check (Alcotest.float 0.0) "minor words allocated while unguarded" 0.0 delta

(* ---------------- guard semantics ---------------- *)

let test_guard_fuel () =
  let g = Guard.make ~fuel:2 () in
  check bool_c "limited" true (Guard.limited g);
  let r =
    Guard.run g (fun () ->
        for _ = 1 to 10 do
          Guard.tick "site.a"
        done)
  in
  (match r with
  | Error (Error.Budget_exhausted { phase; spent }) ->
    check string_c "phase" "site.a" phase;
    check int_c "spent at raise" 3 spent
  | _ -> Alcotest.fail "expected Budget_exhausted");
  check int_c "spent persists" 3 (Guard.spent g);
  (* the same guard stays exhausted in a later scope: fuel is shared *)
  match Guard.run g (fun () -> Guard.tick "site.b") with
  | Error (Error.Budget_exhausted { phase; spent }) ->
    check string_c "later phase" "site.b" phase;
    check int_c "later spent" 4 spent
  | _ -> Alcotest.fail "expected Budget_exhausted in second scope"

let test_guard_deadline_zero () =
  let g = Guard.make ~deadline_ms:0 () in
  match Guard.run g (fun () -> Guard.tick "site.d") with
  | Error (Error.Deadline_exceeded { phase; elapsed_ns }) ->
    check string_c "phase" "site.d" phase;
    check bool_c "elapsed >= 0" true (Int64.compare elapsed_ns 0L >= 0)
  | _ -> Alcotest.fail "deadline_ms=0 must trip on the first tick"

let test_guard_unlimited () =
  let g = Guard.make () in
  check bool_c "unlimited" false (Guard.limited g);
  match
    Guard.run g (fun () ->
        for _ = 1 to 1000 do
          Guard.tick "site.free"
        done;
        42)
  with
  | Ok v ->
    check int_c "value" 42 v;
    check int_c "spent counted" 1000 (Guard.spent g)
  | Error _ -> Alcotest.fail "unlimited guard must not trip"

let test_guard_contains_raises () =
  let g = Guard.make () in
  (match Guard.run g (fun () -> failwith "boom") with
  | Error (Error.Internal (Failure m)) -> check string_c "payload" "boom" m
  | _ -> Alcotest.fail "arbitrary raise must become Internal");
  check bool_c "uninstalled after raise" false (Guard.active ())

let test_guard_active_scoping () =
  check bool_c "inactive outside" false (Guard.active ());
  let g = Guard.make ~fuel:10 () in
  (match Guard.run g (fun () -> Guard.active ()) with
  | Ok b -> check bool_c "active inside" true b
  | Error _ -> Alcotest.fail "no budget consumed");
  check bool_c "inactive after" false (Guard.active ())

(* ---------------- chaos semantics ---------------- *)

let test_chaos_plan_deterministic () =
  List.iter
    (fun seed ->
      let p1 = Chaos.plan_of_seed seed and p2 = Chaos.plan_of_seed seed in
      check string_c
        (Printf.sprintf "seed %d stable" seed)
        (Chaos.describe_plan p1) (Chaos.describe_plan p2);
      let n = List.length p1 in
      check bool_c "1-2 entries" true (n >= 1 && n <= 2);
      List.iter
        (fun (site, hit, _) ->
          check bool_c "site in catalogue" true (List.mem site Chaos.sites);
          check bool_c "hit in range" true (hit >= 0 && hit < 12))
        p1)
    [ 0; 1; 2; 42; 1000; -7 ]

let test_chaos_fire_at_hit () =
  Chaos.with_plan
    [ ("s", 2, Chaos.Raise) ]
    (fun () ->
      check bool_c "armed" true (Chaos.armed ());
      Chaos.fire "s";
      Chaos.fire "s";
      Chaos.fire "other";
      match Chaos.fire "s" with
      | () -> Alcotest.fail "third fire must raise"
      | exception Chaos.Injected { site; hit } ->
        check string_c "site" "s" site;
        check int_c "hit" 2 hit);
  check bool_c "disarmed after scope" false (Chaos.armed ())

(* An injected fault is NOT a typed error: Guard.run must contain it via
   the Internal catch-all, exactly like a genuine crash. *)
let test_chaos_contained_as_internal () =
  let g = Guard.make () in
  Chaos.with_plan
    [ ("s", 0, Chaos.Raise) ]
    (fun () ->
      match Guard.run g (fun () -> Guard.tick "s") with
      | Error (Error.Internal (Chaos.Injected _)) -> ()
      | _ -> Alcotest.fail "Injected must surface as Internal")

(* A stall long enough to push past an armed deadline turns into
   Deadline_exceeded on the same tick that fired it. *)
let test_chaos_stall_trips_deadline () =
  let g = Guard.make ~deadline_ms:1 () in
  Chaos.with_plan
    [ ("s", 0, Chaos.Stall 2_000) ]
    (fun () ->
      match Guard.run g (fun () -> Guard.tick "s") with
      | Error (Error.Deadline_exceeded { phase; _ }) -> check string_c "phase" "s" phase
      | _ -> Alcotest.fail "2ms stall must trip a 1ms deadline")

(* ---------------- error taxonomy ---------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_error_rendering () =
  let e = Error.Invalid_input { line = Some 3; field = "time"; reason = "job time < 1" } in
  check string_c "to_string" "invalid input (line 3, field time): job time < 1" (Error.to_string e);
  let j = Error.to_json e in
  check bool_c "json object" true (String.length j > 0 && j.[0] = '{');
  check bool_c "json kind" true (contains j "invalid_input");
  check bool_c "json line" true (contains j "3")

(* ---------------- the degradation ladder ---------------- *)

let variants_feasible sched =
  List.for_all (fun v -> Checker.is_feasible v inst sched) Variant.all

let test_last_resort_feasible () =
  check bool_c "feasible for all variants" true (variants_feasible (Solver.last_resort inst))

let rat_opt_c =
  Alcotest.testable
    (fun ppf -> function
      | None -> Format.pp_print_string ppf "None"
      | Some r -> Rat.pp ppf r)
    (fun a b ->
      match (a, b) with
      | Some x, Some y -> Rat.equal x y
      | None, None -> true
      | _ -> false)

(* With no limits and no armed chaos, solve_robust is solve. *)
let test_robust_clean_run () =
  List.iter
    (fun variant ->
      let r = Solver.solve_robust ~algorithm:Solver.Approx3_2 variant inst in
      check string_c "rung" "requested" r.Solver.rung;
      check int_c "no attempts" 0 (List.length r.Solver.attempts);
      check rat_opt_c "guarantee 3/2" (Some three_half) r.Solver.guarantee;
      check bool_c "certificate present" true (r.Solver.certificate <> None);
      check bool_c "feasible" true (Checker.is_feasible variant inst r.Solver.schedule))
    Variant.all

(* Budget exhaustion on the requested rung lands on the certified
   two-approx rung; the guarantee reported is the rung's, not the
   request's. *)
let test_robust_fuel_degrades () =
  let r = Solver.solve_robust ~fuel:2 ~algorithm:Solver.Approx3_2 Variant.Nonpreemptive inst in
  check string_c "rung" "two-approx" r.Solver.rung;
  check rat_opt_c "guarantee 2" (Some Rat.two) r.Solver.guarantee;
  check bool_c "fuel spent recorded" true (r.Solver.fuel_spent >= 2);
  (match r.Solver.attempts with
  | [ { Solver.rung = "requested"; error = Error.Budget_exhausted { phase; _ } } ] ->
    check string_c "phase is the armed site" "nonp_search.guess" phase
  | _ -> Alcotest.fail "expected one Budget_exhausted attempt");
  check bool_c "feasible" true (Checker.is_feasible Variant.Nonpreemptive inst r.Solver.schedule)

let test_robust_deadline_zero_degrades () =
  List.iter
    (fun variant ->
      let r = Solver.solve_robust ~deadline_ms:0 ~algorithm:Solver.Approx3_2 variant inst in
      check string_c "rung" "two-approx" r.Solver.rung;
      check rat_opt_c "guarantee 2" (Some Rat.two) r.Solver.guarantee;
      (match r.Solver.attempts with
      | [ { Solver.rung = "requested"; error = Error.Deadline_exceeded _ } ] -> ()
      | _ -> Alcotest.fail "expected one Deadline_exceeded attempt");
      check bool_c "feasible" true (Checker.is_feasible variant inst r.Solver.schedule))
    Variant.all

(* The fault-injection matrix: for every chaos site, arming Raise at hit 0
   on an algorithm that reaches the site must leave the requested rung,
   land on the expected fallback, report that rung's guarantee, and still
   return a checker-feasible schedule — with nothing escaping. *)
let matrix =
  [
    ("nonp_search.guess", Variant.Nonpreemptive, Solver.Approx3_2);
    ("pmtn_cj.bound_test", Variant.Preemptive, Solver.Approx3_2);
    ("pmtn_dual.test", Variant.Preemptive, Solver.Approx3_2);
    ("splittable_cj.bound_test", Variant.Splittable, Solver.Approx3_2);
    ("dual_search.guess", Variant.Nonpreemptive, Solver.Approx3_2_eps eps);
    ("dual_search.guess", Variant.Preemptive, Solver.Approx3_2_eps eps);
    ("dual_search.guess", Variant.Splittable, Solver.Approx3_2_eps eps);
  ]

let test_fault_matrix_to_two_approx () =
  (* every site is exercised by some matrix row *)
  List.iter
    (fun site ->
      check bool_c (site ^ " covered") true
        (site = "two_approx.solve" || List.exists (fun (s, _, _) -> s = site) matrix))
    Chaos.sites;
  List.iter
    (fun (site, variant, algorithm) ->
      let r =
        Chaos.with_plan
          [ (site, 0, Chaos.Raise) ]
          (fun () -> Solver.solve_robust ~algorithm variant inst)
      in
      let label = site ^ "/" ^ Variant.to_string variant in
      check string_c (label ^ " rung") "two-approx" r.Solver.rung;
      check rat_opt_c (label ^ " guarantee") (Some Rat.two) r.Solver.guarantee;
      (match r.Solver.attempts with
      | [ { Solver.rung = "requested"; error = Error.Internal (Chaos.Injected i) } ] ->
        check string_c (label ^ " fault site") site i.site
      | _ -> Alcotest.fail (label ^ ": expected one Internal(Injected) attempt"));
      check bool_c (label ^ " feasible") true
        (Checker.is_feasible variant inst r.Solver.schedule))
    matrix

(* Crashing the fallback too reaches the uncertified terminal rung. *)
let test_fault_matrix_to_terminal () =
  let r =
    Chaos.with_plan
      [ ("nonp_search.guess", 0, Chaos.Raise); ("two_approx.solve", 0, Chaos.Raise) ]
      (fun () -> Solver.solve_robust ~algorithm:Solver.Approx3_2 Variant.Nonpreemptive inst)
  in
  check string_c "rung" "list-scheduling" r.Solver.rung;
  check rat_opt_c "no guarantee" None r.Solver.guarantee;
  check rat_opt_c "no certificate" None r.Solver.certificate;
  check int_c "two failed rungs" 2 (List.length r.Solver.attempts);
  check bool_c "rung order" true
    (List.map (fun (a : Solver.attempt) -> a.rung) r.Solver.attempts
    = [ "requested"; "two-approx" ]);
  check bool_c "feasible" true (Checker.is_feasible Variant.Nonpreemptive inst r.Solver.schedule)

(* Requested = Approx2 has no middle rung: a faulted two-approx drops
   straight to the terminal rung. *)
let test_fault_approx2_to_terminal () =
  let r =
    Chaos.with_plan
      [ ("two_approx.solve", 0, Chaos.Raise) ]
      (fun () -> Solver.solve_robust ~algorithm:Solver.Approx2 Variant.Splittable inst)
  in
  check string_c "rung" "list-scheduling" r.Solver.rung;
  check int_c "one attempt" 1 (List.length r.Solver.attempts);
  check bool_c "feasible" true (Checker.is_feasible Variant.Splittable inst r.Solver.schedule)

(* Degradations surface in the telemetry layer. *)
let test_robust_obs_counters () =
  let r, report =
    Probe.with_recording (fun () ->
        Solver.solve_robust ~deadline_ms:0 ~algorithm:Solver.Approx3_2 Variant.Splittable inst)
  in
  check string_c "rung" "two-approx" r.Solver.rung;
  check int_c "rung counter" 1 (Bss_obs.Report.counter report "resilience.rung.two-approx");
  check int_c "degraded counter" 1 (Bss_obs.Report.counter report "resilience.degraded");
  check int_c "failed counter" 1 (Bss_obs.Report.counter report "resilience.rung_failed")

(* ---------------- chaos sweep contract ---------------- *)

(* A seeded chaos sweep over generated instances: whatever the plans
   inject, no exception escapes and every run's schedule passes the exact
   checker. *)
let test_chaos_sweep_contract () =
  let config = { Bss_oracle.Harness.default_config with cases = 6; max_m = 4; max_n = 16 } in
  List.iter
    (fun chaos ->
      let r = Bss_oracle.Harness.chaos_sweep config ~chaos in
      check int_c (Printf.sprintf "chaos=%d crashes" chaos) 0
        (List.length r.Bss_oracle.Harness.chaos_crashes);
      check int_c (Printf.sprintf "chaos=%d infeasible" chaos) 0
        (List.length r.Bss_oracle.Harness.chaos_infeasible);
      check bool_c "sweeps counted" true (r.Bss_oracle.Harness.sweeps > 0);
      let total = List.fold_left (fun acc (_, k) -> acc + k) 0 r.Bss_oracle.Harness.rung_counts in
      check int_c "every run lands on a rung" r.Bss_oracle.Harness.sweeps total)
    [ 1; 2; 3 ]

let () =
  Alcotest.run "bss_resilience"
    [
      ( "guard",
        [
          Alcotest.test_case "disabled path allocation-free" `Quick test_disabled_no_alloc;
          Alcotest.test_case "fuel" `Quick test_guard_fuel;
          Alcotest.test_case "deadline zero" `Quick test_guard_deadline_zero;
          Alcotest.test_case "unlimited" `Quick test_guard_unlimited;
          Alcotest.test_case "contains raises" `Quick test_guard_contains_raises;
          Alcotest.test_case "scoping" `Quick test_guard_active_scoping;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "plan determinism" `Quick test_chaos_plan_deterministic;
          Alcotest.test_case "fire at hit" `Quick test_chaos_fire_at_hit;
          Alcotest.test_case "contained as internal" `Quick test_chaos_contained_as_internal;
          Alcotest.test_case "stall trips deadline" `Quick test_chaos_stall_trips_deadline;
        ] );
      ("error", [ Alcotest.test_case "rendering" `Quick test_error_rendering ]);
      ( "ladder",
        [
          Alcotest.test_case "last resort feasible" `Quick test_last_resort_feasible;
          Alcotest.test_case "clean run" `Quick test_robust_clean_run;
          Alcotest.test_case "fuel degrades" `Quick test_robust_fuel_degrades;
          Alcotest.test_case "deadline degrades" `Quick test_robust_deadline_zero_degrades;
          Alcotest.test_case "fault matrix to two-approx" `Quick test_fault_matrix_to_two_approx;
          Alcotest.test_case "fault matrix to terminal" `Quick test_fault_matrix_to_terminal;
          Alcotest.test_case "approx2 to terminal" `Quick test_fault_approx2_to_terminal;
          Alcotest.test_case "obs counters" `Quick test_robust_obs_counters;
        ] );
      ( "chaos-sweep",
        [ Alcotest.test_case "contract over seeds" `Quick test_chaos_sweep_contract ] );
    ]
