(* Tests for the socket front end: the bss-net/1 wire codec, the
   deterministic per-tenant admission quota, and live round trips over a
   real Unix-domain socket — exactly-once answers across reconnects
   (dedup from the outcome cache), deterministic quota shedding,
   protocol-level rejection of malformed frames, and drain-after
   shutdown across journal rotation. *)

open Bss_instances
open Bss_service
module Wire = Bss_net.Wire
module Quota = Bss_net.Quota
module Server = Bss_net.Server
module Client = Bss_net.Client
module Chaos = Bss_resilience.Chaos
module Rerror = Bss_resilience.Error

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string
let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) ("bss_net_" ^ name)
let rm path = if Sys.file_exists path then Sys.remove path

(* ---------------- wire codec ---------------- *)

let gen_request ?(id = "g1") ?(tenant = "acme") ?(seed = max_int) () =
  {
    Request.id;
    tenant;
    variant = Variant.Preemptive;
    algorithm = Bss_core.Solver.Approx3_2;
    source = Request.Gen { family = "uniform"; seed; m = 3; n = 12 };
  }

let test_wire_solve_roundtrip () =
  (* seeds at both ends of the native-int range are exactly the values a
     JSON float would corrupt — the string-typed "seed" must carry them *)
  List.iter
    (fun seed ->
      let r = gen_request ~seed () in
      match Wire.parse_frame (Wire.solve_frame r) with
      | Ok (Wire.Solve r') ->
        check bool_c (Printf.sprintf "gen round-trip seed=%d" seed) true (r = r')
      | Ok (Wire.Ping | Wire.Stats | Wire.Watch) -> Alcotest.fail "solve decoded as another op"
      | Error e -> Alcotest.fail (Rerror.to_string e))
    [ 0; 42; max_int; min_int; 1 lsl 60 ];
  let f =
    {
      Request.id = "f1";
      tenant = Request.default_tenant;
      variant = Variant.Nonpreemptive;
      algorithm = Bss_core.Solver.Approx2;
      source = Request.File "/tmp/instance.txt";
    }
  in
  match Wire.parse_frame (Wire.solve_frame f) with
  | Ok (Wire.Solve f') -> check bool_c "file round-trip" true (f = f')
  | _ -> Alcotest.fail "file request must round-trip"

let test_wire_ping_pong () =
  (match Wire.parse_frame Wire.ping_frame with
  | Ok Wire.Ping -> ()
  | _ -> Alcotest.fail "ping frame must parse as Ping");
  match Wire.parse_reply Wire.pong_frame with
  | Ok Wire.Pong -> ()
  | _ -> Alcotest.fail "pong frame must parse as Pong"

let test_wire_result_roundtrip () =
  let r = gen_request ~id:"r7" ~tenant:"biz" () in
  let o =
    {
      Runtime.request = r;
      status = Runtime.Done;
      rung = Some "requested";
      makespan = Some "35/2";
      routed = "requested";
      retries_used = 2;
      degraded = false;
      from_checkpoint = true;
      error = None;
      latency_ns = 123_456_789L;
      queue_wait_ns = 4_242L;
    }
  in
  (match Wire.parse_reply (Wire.result_frame o) with
  | Ok
      (Wire.Result
        { id; tenant; status; variant; rung; makespan; routed; retries; checkpointed; solve_ns;
          queue_wait_ns; error; _ }) ->
    check string_c "id" "r7" id;
    check string_c "tenant" "biz" tenant;
    check string_c "status" "done" status;
    check string_c "variant" (Variant.to_string Variant.Preemptive) variant;
    check bool_c "rung" true (rung = Some "requested");
    check bool_c "makespan" true (makespan = Some "35/2");
    check string_c "routed" "requested" routed;
    check int_c "retries" 2 retries;
    check bool_c "checkpointed" true checkpointed;
    check bool_c "solve_ns" true (solve_ns = 123_456_789L);
    check bool_c "queue_wait_ns" true (queue_wait_ns = 4_242L);
    check bool_c "no error" true (error = None)
  | Ok _ -> Alcotest.fail "result frame decoded as another op"
  | Error e -> Alcotest.fail e);
  (* a rejected outcome carries its typed error's kind *)
  let rejected =
    {
      o with
      Runtime.status = Runtime.Rejected;
      rung = None;
      makespan = None;
      routed = "-";
      error = Some (Rerror.Overloaded { capacity = 4; pending = 4 });
    }
  in
  match Wire.parse_reply (Wire.result_frame rejected) with
  | Ok (Wire.Result { status; rung; error; _ }) ->
    check string_c "rejected status" "rejected" status;
    check bool_c "no rung" true (rung = None);
    check bool_c "error kind" true (error = Some "overloaded")
  | _ -> Alcotest.fail "rejected outcome must round-trip"

let test_wire_shed_frame () =
  match Wire.parse_reply (Wire.shed_frame (gen_request ()) ~capacity:4 ~pending:0) with
  | Ok (Wire.Result { id; tenant; status; error; _ }) ->
    check string_c "id" "g1" id;
    check string_c "tenant" "acme" tenant;
    check string_c "status" "shed" status;
    check bool_c "typed overloaded error" true (error = Some "overloaded")
  | _ -> Alcotest.fail "shed frame must parse as a result"

let test_wire_malformed () =
  let expect_invalid name line =
    match Wire.parse_frame line with
    | Error (Rerror.Invalid_input _) -> ()
    | Ok _ -> Alcotest.fail (name ^ ": must be rejected")
    | Error e -> Alcotest.fail (name ^ ": wrong error " ^ Rerror.to_string e)
  in
  expect_invalid "not json" "garbage";
  expect_invalid "no schema" {|{"op":"ping"}|};
  expect_invalid "wrong schema" {|{"schema":"bss-net/9","op":"ping"}|};
  expect_invalid "unknown op" {|{"schema":"bss-net/1","op":"fly"}|};
  expect_invalid "solve without id"
    {|{"schema":"bss-net/1","op":"solve","variant":"nonp","algorithm":"2","file":"x"}|};
  expect_invalid "both sources"
    {|{"schema":"bss-net/1","op":"solve","id":"a","variant":"nonp","algorithm":"2","file":"x","gen":{"family":"uniform","seed":"1","m":2,"n":4}}|};
  expect_invalid "non-integer seed"
    {|{"schema":"bss-net/1","op":"solve","id":"a","variant":"nonp","algorithm":"2","gen":{"family":"uniform","seed":"ten","m":2,"n":4}}|};
  expect_invalid "unknown variant"
    {|{"schema":"bss-net/1","op":"solve","id":"a","variant":"quux","algorithm":"2","file":"x"}|};
  (* the reply parser reports, never raises *)
  check bool_c "reply: garbage" true (Result.is_error (Wire.parse_reply "garbage"));
  check bool_c "reply: no op" true (Result.is_error (Wire.parse_reply "{}"));
  (* an error frame round-trips its kind and optional id *)
  match
    Wire.parse_reply
      (Wire.error_frame ~id:"a" (Rerror.Invalid_input { line = None; field = "frame"; reason = "x" }))
  with
  | Ok (Wire.Error_frame { id = Some "a"; error = "invalid_input" }) -> ()
  | _ -> Alcotest.fail "error frame must round-trip id and kind"

let test_wire_drain_lines () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf "alpha\nbeta\npar";
  check bool_c "complete lines extracted" true (Wire.drain_lines buf = [ "alpha"; "beta" ]);
  check string_c "remainder buffered" "par" (Buffer.contents buf);
  Buffer.add_string buf "tial\n";
  check bool_c "split line reassembled" true (Wire.drain_lines buf = [ "partial" ]);
  check int_c "buffer drained" 0 (Buffer.length buf);
  check bool_c "empty buffer yields nothing" true (Wire.drain_lines buf = [])

(* ---------------- admission quota ---------------- *)

let test_quota_burst_and_shed () =
  let q = Quota.create { Quota.rate = 0; burst = 2; refill_every = 1 } in
  check bool_c "first admit" true (Quota.admit q "a");
  check bool_c "second admit" true (Quota.admit q "a");
  check int_c "bucket empty" 0 (Quota.tokens q "a");
  check bool_c "third sheds" false (Quota.admit q "a");
  check bool_c "other tenant unaffected" true (Quota.admit q "b");
  check bool_c "shed counts" true (Quota.shed_counts q = [ ("a", 1) ]);
  check int_c "shed total" 1 (Quota.shed_total q)

let test_quota_refill_deterministic () =
  (* rate 1, burst 2, refill every 3rd attempt: the admit/shed pattern is
     a pure function of the attempt sequence — pinned, and replayed *)
  let run () =
    let q = Quota.create { Quota.rate = 1; burst = 2; refill_every = 3 } in
    List.init 7 (fun _ -> Quota.admit q "a")
  in
  check bool_c "pinned pattern" true
    (run () = [ true; true; false; true; false; false; true ]);
  check bool_c "replay identical" true (run () = run ())

let test_quota_refill_boundary () =
  (* A bucket emptied exactly at a window boundary must admit the first
     attempt of the next window: with burst 3 and refill_every 3, the
     first three attempts drain the bucket and complete the window, so
     the fourth attempt draws from the refilled bucket instead of
     shedding. *)
  let q = Quota.create { Quota.rate = 1; burst = 3; refill_every = 3 } in
  check bool_c "window attempt 1" true (Quota.admit q "a");
  check bool_c "window attempt 2" true (Quota.admit q "a");
  check bool_c "window attempt 3" true (Quota.admit q "a");
  check int_c "bucket drained at boundary" 0 (Quota.tokens q "a");
  check bool_c "first attempt of next window admits" true (Quota.admit q "a");
  check int_c "nothing shed" 0 (Quota.shed_total q)

let test_quota_invalid () =
  let raises c = match Quota.create c with exception Invalid_argument _ -> true | _ -> false in
  check bool_c "burst < 1" true (raises { Quota.rate = 0; burst = 0; refill_every = 1 });
  check bool_c "rate < 0" true (raises { Quota.rate = -1; burst = 1; refill_every = 1 });
  check bool_c "refill_every < 1" true (raises { Quota.rate = 0; burst = 1; refill_every = 0 })

(* ---------------- chaos plan coverage ---------------- *)

let test_net_plan_covers_all_sites () =
  List.iter
    (fun seed ->
      let plan = Server.net_plan seed in
      check int_c "one arm per site" (List.length Chaos.net_sites) (List.length plan);
      List.iter
        (fun site ->
          check bool_c
            (Printf.sprintf "seed=%d arms %s" seed site)
            true
            (List.exists (fun (s, _, _) -> s = site) plan))
        Chaos.net_sites)
    [ 0; 1; 7; 42 ];
  check bool_c "deterministic" true (Server.net_plan 7 = Server.net_plan 7)

(* ---------------- live server round trips ---------------- *)

let requests ?(tenants = []) n =
  List.init n (fun i ->
      {
        Request.id = Printf.sprintf "q%02d" i;
        tenant =
          (match tenants with
          | [] -> Request.default_tenant
          | ts -> List.nth ts (i mod List.length ts));
        variant = Variant.Nonpreemptive;
        algorithm = Bss_core.Solver.Approx3_2;
        source = Request.Gen { family = "uniform"; seed = 2000 + i; m = 2; n = 8 };
      })

let service_config =
  {
    Runtime.default_config with
    queue_capacity = 16;
    burst = 16;
    workers = Some 2;
    checkpoint_every = 1;
  }

let server_config ~listen_path ?quota ?drain_after () =
  {
    Server.listen_path;
    service = service_config;
    quota;
    read_timeout_ms = Server.default_read_timeout_ms;
    write_timeout_ms = Server.default_write_timeout_ms;
    drain_after;
    max_frame_bytes = Server.default_max_frame_bytes;
  }

let client_config path =
  { Client.default_config with connect_path = path; rounds = 3; connect_timeout_ms = 10_000 }

(* serve in a spare domain, run [body] against the socket, join for the
   server summary (the drain_after budget bounds the server's life) *)
let with_server config body =
  rm config.Server.listen_path;
  let d = Domain.spawn (fun () -> Server.serve ~log:(fun _ -> ()) config) in
  let r = body () in
  let summary = Domain.join d in
  rm config.Server.listen_path;
  (r, summary)

let test_server_roundtrip_and_dedup () =
  let path = tmp_path "rt.sock" in
  let reqs = requests 6 in
  (* budget: 6 live answers + 6 dedup answers, then drain *)
  let (s1, s2), server =
    with_server (server_config ~listen_path:path ~drain_after:12 ()) (fun () ->
        let s1 = Client.soak (client_config path) reqs in
        let s2 = Client.soak (client_config path) reqs in
        (s1, s2))
  in
  check bool_c "first soak ok" true (Client.ok s1);
  check int_c "all answered" 6 s1.Client.answered;
  check int_c "all done" 6 s1.Client.completed;
  (* the re-sent stream is answered from the outcome cache, bit-identically *)
  check bool_c "second soak ok" true (Client.ok s2);
  check string_c "replay rows bit-identical" (Client.render_rows s1) (Client.render_rows s2);
  check int_c "server dedup hits" 6 server.Server.dedup_hits;
  check int_c "server answers" 12 server.Server.answers;
  check int_c "nothing solved twice" 6 server.Server.service.Runtime.completed;
  check int_c "two connections" 2 server.Server.accepted;
  check string_c "drain reason" "drain-after" server.Server.drain_reason

let test_server_quota_shed () =
  let path = tmp_path "quota.sock" in
  let reqs = requests ~tenants:[ "a"; "b" ] 8 in
  let s, server =
    with_server
      (server_config ~listen_path:path
         ~quota:{ Quota.rate = 0; burst = 2; refill_every = 1 }
         ~drain_after:8 ())
      (fun () -> Client.soak (client_config path) reqs)
  in
  (* a shed is an answer: every id comes back exactly once *)
  check bool_c "soak ok" true (Client.ok s);
  check int_c "answered" 8 s.Client.answered;
  check int_c "done" 4 s.Client.completed;
  check int_c "shed" 4 s.Client.shed;
  check bool_c "shed by tenant" true (s.Client.shed_by_tenant = [ ("a", 2); ("b", 2) ]);
  check bool_c "server agrees" true (server.Server.shed = [ ("a", 2); ("b", 2) ]);
  check int_c "server shed total" 4 server.Server.shed_total;
  check int_c "engine saw only admitted work" 4 server.Server.service.Runtime.completed

let test_server_rotation_resume () =
  let path = tmp_path "rot.sock" in
  let jpath = tmp_path "rot.journal" in
  rm jpath;
  let reqs = requests 6 in
  let s1, server1 =
    let config = server_config ~listen_path:path ~drain_after:6 () in
    rm path;
    let d =
      Domain.spawn (fun () ->
          Server.serve ~journal:(Journal.fresh ~rotate_every:2 jpath) ~log:(fun _ -> ()) config)
    in
    let s1 = Client.soak (client_config path) reqs in
    (s1, Domain.join d)
  in
  check bool_c "first life ok" true (Client.ok s1);
  check bool_c "rotated" true (server1.Server.rotations >= 2);
  check bool_c "sealed segment on disk" true (Sys.file_exists (jpath ^ ".1"));
  (* a second server life on the rotated chain answers the same stream
     from checkpoints — no re-solving, rows bit-identical *)
  let s2, server2 =
    let config = server_config ~listen_path:path ~drain_after:6 () in
    rm path;
    let d =
      Domain.spawn (fun () ->
          Server.serve ~journal:(Journal.load ~rotate_every:2 jpath) ~log:(fun _ -> ()) config)
    in
    let s2 = Client.soak (client_config path) reqs in
    (s2, Domain.join d)
  in
  check bool_c "second life ok" true (Client.ok s2);
  check string_c "resume rows bit-identical" (Client.render_rows s1) (Client.render_rows s2);
  check int_c "all restored, none re-solved" 6 server2.Server.service.Runtime.checkpointed;
  rm path;
  rm jpath;
  for i = 1 to 4 do
    rm (jpath ^ "." ^ string_of_int i)
  done

let test_server_rejects_malformed_frame () =
  let path = tmp_path "mal.sock" in
  let (err, ok), server =
    with_server (server_config ~listen_path:path ~drain_after:1 ()) (fun () ->
        let err = Client.send_raw ~path ~connect_timeout_ms:10_000 ~idle_timeout_ms:10_000 "garbage" in
        let ok =
          Client.send_raw ~path ~connect_timeout_ms:10_000 ~idle_timeout_ms:10_000
            (Wire.solve_frame (List.hd (requests 1)))
        in
        (err, ok))
  in
  (match err with
  | Ok line -> (
    match Wire.parse_reply line with
    | Ok (Wire.Error_frame { error = "invalid_input"; _ }) -> ()
    | _ -> Alcotest.fail ("malformed frame must draw a typed error frame, got " ^ line))
  | Error e -> Alcotest.fail ("no reply to malformed frame: " ^ e));
  (match ok with
  | Ok line -> (
    match Wire.parse_reply line with
    | Ok (Wire.Result { status = "done"; _ }) -> ()
    | _ -> Alcotest.fail ("valid solve must still be answered, got " ^ line))
  | Error e -> Alcotest.fail ("no reply to valid solve: " ^ e));
  check int_c "malformed counted" 1 server.Server.frames_malformed;
  check int_c "one answer" 1 server.Server.answers

let test_server_config_validation () =
  let base = server_config ~listen_path:(tmp_path "v.sock") () in
  let raises c = match Server.serve c with exception Invalid_argument _ -> true | _ -> false in
  check bool_c "empty listen path" true (raises { base with Server.listen_path = "" });
  check bool_c "negative read timeout" true (raises { base with Server.read_timeout_ms = -1 });
  check bool_c "negative drain_after" true (raises { base with Server.drain_after = Some (-1) });
  check bool_c "tiny max_frame_bytes" true (raises { base with Server.max_frame_bytes = 0 })

let () =
  Alcotest.run "bss_net"
    [
      ( "wire",
        [
          Alcotest.test_case "solve round-trip" `Quick test_wire_solve_roundtrip;
          Alcotest.test_case "ping/pong" `Quick test_wire_ping_pong;
          Alcotest.test_case "result round-trip" `Quick test_wire_result_roundtrip;
          Alcotest.test_case "shed frame" `Quick test_wire_shed_frame;
          Alcotest.test_case "malformed frames" `Quick test_wire_malformed;
          Alcotest.test_case "line framing" `Quick test_wire_drain_lines;
        ] );
      ( "quota",
        [
          Alcotest.test_case "burst and shed" `Quick test_quota_burst_and_shed;
          Alcotest.test_case "deterministic refill" `Quick test_quota_refill_deterministic;
          Alcotest.test_case "refill at window boundary" `Quick test_quota_refill_boundary;
          Alcotest.test_case "invalid configs" `Quick test_quota_invalid;
        ] );
      ( "chaos",
        [ Alcotest.test_case "net plan covers all sites" `Quick test_net_plan_covers_all_sites ] );
      ( "server",
        [
          Alcotest.test_case "round trip and dedup" `Slow test_server_roundtrip_and_dedup;
          Alcotest.test_case "quota shedding" `Slow test_server_quota_shed;
          Alcotest.test_case "rotation and resume" `Slow test_server_rotation_resume;
          Alcotest.test_case "malformed frame rejected" `Slow test_server_rejects_malformed_frame;
          Alcotest.test_case "config validation" `Quick test_server_config_validation;
        ] );
    ]
