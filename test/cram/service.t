Batch-service runtime: bounded queue, retry/backoff, circuit breaker,
checkpointed journal. Everything here is seed-pinned and timestamp-free.

A small mixed batch served end to end. The journal lands next to the
batch file by default.

  $ printf '# demo batch\na1 nonp 3/2 gen uniform 11 3 12\na2 pmtn 3/2 gen uniform 12 3 12\na3 split 3/2 gen uniform 13 3 12\na4 nonp 2 gen tiny 14 2 8\n' > batch.txt
  $ bss serve --batch batch.txt --seed 7
  serve: batch=batch.txt requests=4 queue=64 workers=auto resume=false
  a1                       done     rung=requested makespan=201 routed=requested retries=0
  a2                       done     rung=requested makespan=253 routed=requested retries=0
  a3                       done     rung=requested makespan=694/3 routed=requested retries=0
  a4                       done     rung=requested makespan=46 routed=requested retries=0
  service: 4 requests | done=4 (checkpointed=0) rejected=0 aborted=0 dropped=0 not-admitted=0 retries=0
  rungs: requested=4
  queue: capacity-peak=4 waves=1
  journal: dirty=0 flush-failures=0
  $ cat batch.txt.journal
  a1	requested	201
  a2	requested	253
  a3	requested	694/3
  a4	requested	46

Resume from a partial journal: checkpointed requests are restored
without re-solving (routed=-), the rest are solved, and the journal is
completed in place.

  $ printf 'a1\trequested\t201\na2\trequested\t253\n' > partial.journal
  $ bss serve --batch batch.txt --journal partial.journal --resume --seed 7
  serve: batch=batch.txt requests=4 queue=64 workers=auto resume=true
  a1                       done     rung=requested makespan=201 routed=- retries=0 (checkpointed)
  a2                       done     rung=requested makespan=253 routed=- retries=0 (checkpointed)
  a3                       done     rung=requested makespan=694/3 routed=requested retries=0
  a4                       done     rung=requested makespan=46 routed=requested retries=0
  service: 4 requests | done=4 (checkpointed=2) rejected=0 aborted=0 dropped=0 not-admitted=0 retries=0
  rungs: requested=4
  queue: capacity-peak=2 waves=1
  journal: dirty=0 flush-failures=0
  $ cat partial.journal
  a1	requested	201
  a2	requested	253
  a3	requested	694/3
  a4	requested	46

A malformed batch line is a typed invalid-input error, exit code 2.

  $ printf 'x1 nonp 3/2 gen uniform 7\n' > bad.txt
  $ bss serve --batch bad.txt
  bss: invalid input (line 1, field request): malformed request line: x1 nonp 3/2 gen uniform 7
  [2]

Backpressure: a queue of 8 fed in bursts of 12 rejects the overflow
with a typed overloaded error; nothing is silently dropped and the
soak exit stays 0 (rejection under pressure is the contract working).

  $ bss soak -n 30 --seed 11 --queue 8 --burst 12 --workers 2 | grep -E 'rejected|^service:|^queue:'
  soak-near-overflow-8     rejected overloaded: work queue full (8 pending, capacity 8)
  soak-uniform-9           rejected overloaded: work queue full (8 pending, capacity 8)
  soak-small-batches-10    rejected overloaded: work queue full (8 pending, capacity 8)
  soak-single-job-11       rejected overloaded: work queue full (8 pending, capacity 8)
  soak-single-job-20       rejected overloaded: work queue full (8 pending, capacity 8)
  soak-expensive-21        rejected overloaded: work queue full (8 pending, capacity 8)
  soak-zipf-22             rejected overloaded: work queue full (8 pending, capacity 8)
  soak-anti-list-23        rejected overloaded: work queue full (8 pending, capacity 8)
  service: 30 requests | done=22 (checkpointed=0) rejected=8 aborted=0 dropped=0 not-admitted=0 retries=0
  queue: capacity-peak=8 waves=3

Fuel starvation trips the breaker deterministically: with --fuel 1
every requested solve degrades to the certified 2-approx, two ladder
failures open the breaker, the cooldown routes requests straight to
the fallback rung (which needs no fuel and succeeds undegraded), and
the half-open probe degrades again and re-opens it.

  $ printf 'b1 nonp 3/2 gen uniform 21 3 12\nb2 nonp 3/2 gen uniform 22 3 12\nb3 nonp 3/2 gen uniform 23 3 12\nb4 nonp 3/2 gen uniform 24 3 12\nb5 nonp 3/2 gen uniform 25 3 12\nb6 nonp 3/2 gen uniform 26 3 12\n' > fuelbatch.txt
  $ bss serve --batch fuelbatch.txt --fuel 1 --breaker-k 2 --burst 1 --retries 0 --workers 1 --breaker-cooldown 2
  serve: batch=fuelbatch.txt requests=6 queue=64 workers=1 resume=false
  b1                       done     rung=two-approx makespan=263 routed=requested retries=0
  b2                       done     rung=two-approx makespan=362 routed=requested retries=0
  b3                       done     rung=requested makespan=218 routed=fallback retries=0
  b4                       done     rung=requested makespan=265 routed=fallback retries=0
  b5                       done     rung=two-approx makespan=313 routed=probe retries=0
  b6                       done     rung=requested makespan=275 routed=fallback retries=0
  service: 6 requests | done=6 (checkpointed=0) rejected=0 aborted=0 dropped=0 not-admitted=0 retries=0
  rungs: requested=3 two-approx=3
  breaker[non-preemptive]: closed->open open->half-open half-open->open
  queue: capacity-peak=1 waves=6
  journal: dirty=0 flush-failures=0

A seeded chaos soak (chaos arms the fault plan and forces one worker,
so the run is fully deterministic): solver and service faults fire,
the breaker trips and recovers, a journal flush fails once and is
retried to a clean final state, and no request is dropped.

  $ bss soak -n 40 --seed 11 --queue 8 --burst 10 --chaos 6 | tail -6
  soak-single-job-38       rejected overloaded: work queue full (8 pending, capacity 8)
  soak-expensive-39        rejected overloaded: work queue full (8 pending, capacity 8)
  service: 40 requests | done=32 (checkpointed=0) rejected=8 aborted=0 dropped=0 not-admitted=0 retries=0
  rungs: requested=24 two-approx=8
  queue: capacity-peak=8 waves=4
  journal: dirty=0 flush-failures=0

  $ bss soak -n 40 --seed 11 --queue 8 --burst 10 --chaos 4 --journal c4.journal | tail -3
  rungs: requested=28 two-approx=4
  queue: capacity-peak=8 waves=4
  journal: dirty=0 flush-failures=1
  $ wc -l < c4.journal
  32
