Offline analysis and the SLO gate: a soak writes schema-tagged
artifacts (metrics JSONL, summary JSON, Chrome trace), `bss report`
reads them back without running anything, and `bss soak --slo` turns a
declarative objectives file into a hard exit-code gate. Timings are
wall-clock, so these tests pin counters, schemas, names and exit codes
— never durations.

An objectives file declares what healthy looks like (schema-tagged like
every other artifact):

  $ cat > slo.json <<'EOF'
  > {"schema":"bss-slo/1","objectives":[
  >   {"name":"errors","type":"error_rate","max":0.0},
  >   {"name":"p99-solve","type":"latency","hist":"service.solve_ns","quantile":0.99,"max_ms":60000}]}
  > EOF

A clean seeded soak passes the gate (exit 0); the verdict's
deterministic fields land in the text summary, in every periodic
metrics line and in the summary JSON:

  $ bss soak -n 24 --seed 7 --burst 8 --slo slo.json --metrics-every 8 --trace-out trace.json --json > run.json
  $ grep -c '"schema":"bss-metrics/1"' run.json
  4
  $ grep -c '"slo":{"verdict":"pass","failed":\[\]' run.json
  4

Overload the same stream (queue capacity 6 against bursts of 8) and the
zero-error objective fails: the run exits 1 and names the objective.
The error-rate check is counter-based, so its measured value is exact:

  $ bss soak -n 24 --seed 7 --burst 8 --queue 6 --slo slo.json > fail.out
  [1]
  $ grep -A1 '^slo:' fail.out
  slo: FAIL (2 objectives, 0 windows)
    FAIL errors                   measured=0.25 threshold=0 burn=inf

`bss report` replays the captured stream offline. The counter table is
seed-deterministic:

  $ bss report --metrics run.json > report.out
  $ head -11 report.out
  metrics: run.json (4 records)
  +------------+-------+
  | counter    | value |
  +------------+-------+
  | completed  |    24 |
  | rejected   |     0 |
  | aborted    |     0 |
  | retries    |     0 |
  | queue_peak |     8 |
  | waves      |     3 |
  +------------+-------+

The percentile table covers every service histogram and links p99
buckets to exemplar trace ids; each cited id resolves to a complete
span tree in the trace file (the tail-sampling contract):

  $ grep -o 'service\.[a-z_.-]*' report.out | sort -u
  service.queue.wait_ns
  service.retries_per_request
  service.solve_ns.non-preemptive
  service.solve_ns.preemptive
  service.solve_ns.splittable
  $ python3 -c "
  > import json, re
  > table = open('report.out').read()
  > cited = set(re.findall(r'[0-9a-f]{8}-[0-9]{4}', table))
  > trace = json.load(open('trace.json'))
  > roots = {e['args']['trace_id'] for e in trace['traceEvents']
  >          if e.get('cat') == 'request' and e.get('name') == 'request'}
  > print('cited exemplars:', len(cited) > 0)
  > print('all resolve to request span trees:', cited <= roots)
  > "
  cited exemplars: True
  all resolve to request span trees: True

With the trace file, report breaks the slowest requests down by phase
(queue vs solve vs retry vs journal):

(how many uneventful traces join the always-kept exemplars is
wall-clock-dependent, so the count is masked)

  $ bss report --metrics run.json --trace trace.json --top 3 | grep '^traces:' | sed 's/ [0-9]* in / N in /'
  traces: N in trace.json, slowest 3:
  $ bss report --metrics run.json --trace trace.json --top 3 | grep -c 'soak-'
  3

Two runs diff mechanically (--against): the overloaded run completed 6
fewer requests and rejected 6:

  $ bss soak -n 24 --seed 7 --burst 8 --queue 6 --json > overload.json
  $ bss report --metrics overload.json --against run.json | head -11
  metrics: overload.json (1 record)
  +------------+----------+---------+-------+
  | counter    | baseline | current | delta |
  +------------+----------+---------+-------+
  | completed  |       24 |      18 |    -6 |
  | rejected   |        0 |       6 |    +6 |
  | aborted    |        0 |       0 |    +0 |
  | retries    |        0 |       0 |    +0 |
  | queue_peak |        8 |       6 |    -2 |
  | waves      |        3 |       3 |    +0 |
  +------------+----------+---------+-------+

Unknown schemas are a rejection, not a skip — that is what the tag
exists for. A stream with no records is also an error:

  $ printf '%s\n' '{"schema":"bss-metrics/9","metrics":{}}' > bad.json
  $ bss report --metrics bad.json
  bss report: bad.json: line 1: unsupported schema "bss-metrics/9" (this build reads "bss-metrics/1")
  [2]
  $ bss report --metrics /dev/null
  bss report: /dev/null: no metrics records found (run with --metrics-every or --json)
  [2]

The objectives file itself is schema-checked at startup:

  $ printf '%s\n' '{"schema":"bss-slo/9","objectives":[]}' > badslo.json
  $ bss soak -n 4 --slo badslo.json
  bss: --slo badslo.json: unsupported schema "bss-slo/9" (this build reads "bss-slo/1")
  [2]
