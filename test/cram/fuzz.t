The fuzz driver sweeps the conformance oracle deterministically: the same
master seed always realizes the same cases, so the stats table is pinnable.

  $ bss fuzz --seed 42 --cases 50
  fuzz: seed=42 cases=50 families=uniform,small-batches,single-job,expensive,zipf,anti-list,anti-wrap,tiny,near-overflow variants=non-preemptive,preemptive,splittable
  +--------------------+-------------+-------+------+------+------+
  | property           | theorem     | cases | pass | skip | fail |
  +--------------------+-------------+-------+------+------+------+
  | feasibility        | Thm 1-9     |    50 |   50 |    0 |    0 |
  | certificate        | Thm 1-3     |    50 |   50 |    0 |    0 |
  | ratio-exact        | Thm 1,3,6,8 |    50 |   31 |   19 |    0 |
  | opt-dominance      | Sec 1       |    50 |   27 |   23 |    0 |
  | cross-feasibility  | Sec 1       |    50 |   50 |    0 |    0 |
  | dual-monotone      | Thm 4,5,7,9 |    50 |   50 |    0 |    0 |
  | two-tier-exact     | Num2        |    50 |   50 |    0 |    0 |
  | scale-equivariance | meta        |    50 |   50 |    0 |    0 |
  | machine-augment    | meta        |    50 |   50 |    0 |    0 |
  | merge-classes      | meta        |    50 |   20 |   30 |    0 |
  | duplicate-2m       | meta        |    50 |   50 |    0 |    0 |
  +--------------------+-------------+-------+------+------+------+
  50 cases x 11 properties: 0 violations

Family and variant restrictions change only what is swept, not determinism:

  $ bss fuzz --seed 42 --cases 8 --family tiny --variant split | head -1
  fuzz: seed=42 cases=8 families=tiny variants=splittable

A single case can be replayed verbosely from the id a report would print.
The instance dump and per-property verdicts are bit-stable:

  $ bss fuzz --seed 42 --replay tiny:7
  case tiny:7 (seed 42)
  m 3
  setups 10 9 2
  job 2 1
  job 2 7
  job 2 9
  job 1 5
  job 1 9
  job 1 1
  job 1 7
  job 0 2
  job 0 8
  +--------------------+-------------+---------+
  | property           | theorem     | verdict |
  +--------------------+-------------+---------+
  | feasibility        | Thm 1-9     | pass    |
  | certificate        | Thm 1-3     | pass    |
  | ratio-exact        | Thm 1,3,6,8 | pass    |
  | opt-dominance      | Sec 1       | pass    |
  | cross-feasibility  | Sec 1       | pass    |
  | dual-monotone      | Thm 4,5,7,9 | pass    |
  | two-tier-exact     | Num2        | pass    |
  | scale-equivariance | meta        | pass    |
  | machine-augment    | meta        | pass    |
  | merge-classes      | meta        | skip    |
  | duplicate-2m       | meta        | pass    |
  +--------------------+-------------+---------+
  skip merge-classes: no two classes share a setup value
  ok

Bad inputs fail cleanly:

  $ bss fuzz --seed 42 --replay bogus:xx
  Case.of_id: bad index in bogus:xx
  [1]

  $ bss fuzz --family nope --cases 5
  unknown family; available: uniform, small-batches, single-job, expensive, zipf, anti-list, anti-wrap, tiny, near-overflow
  [1]

Profiled sweeps run on one domain and sum counters per family — still
deterministic for a fixed seed:

  $ bss fuzz --seed 42 --cases 6 --family tiny --variant split --profile
  fuzz --profile: seed=42 cases=6 families=tiny variants=splittable
  +--------+-------------------------------+-------+
  | family | counter                       | total |
  +--------+-------------------------------+-------+
  | tiny   | compaction.runs               |   155 |
  | tiny   | dual_search.accepted          |    31 |
  | tiny   | dual_search.guesses           |    31 |
  | tiny   | solver.won_two_approx         |    62 |
  | tiny   | splittable_cj.bound_tests     |    65 |
  | tiny   | splittable_cj.jump_candidates |     0 |
  | tiny   | splittable_cj.jump_steps      |    10 |
  | tiny   | splittable_cj.region_steps    |    55 |
  +--------+-------------------------------+-------+
  profile: 6 cases, 0 property failures
