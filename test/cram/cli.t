The CLI generates, inspects and solves instances end to end.

Generate a deterministic instance:

  $ bss generate -f uniform -m 4 -n 16 -s 1 > inst.txt
  $ head -2 inst.txt
  m 4
  setups 17 30

Statistics and per-variant lower bounds:

  $ bss check inst.txt
  instance: m=4 c=2 n=16 N=811 smax=30 tmax=99
  non-preemptive  T_min = 811/4
  preemptive      T_min = 811/4
  splittable      T_min = 811/4

Solving prints the certificate chain:

  $ bss solve inst.txt -v nonp -a 3/2 | head -3
  non-preemptive / 3/2 binary-search (Thm 8)
  makespan    246
  certificate 645/2 (makespan <= 3/2 * OPT)

  $ bss solve inst.txt -v split -a 2 | grep -c makespan
  2

Unknown inputs fail cleanly:

  $ bss generate -f nope 2>&1 | head -1
  unknown family; available: uniform, small-batches, single-job, expensive, zipf, anti-list, anti-wrap, tiny, near-overflow

  $ bss solve inst.txt -a 7/8 2>&1 | tail -1 | grep -c algorithm
  0
  [1]

SVG and CSV exports:

  $ bss solve inst.txt -v split -a 3/2 --svg out.svg --csv out.csv > /dev/null
  $ head -c 4 out.svg
  <svg
  $ head -1 out.csv
  machine,start,duration,kind,id,class
  $ tail -1 out.svg
  </svg>

Machine-readable solve output (exact rationals as strings, pinnable):

  $ bss solve inst.txt -v split -a 3/2 --json
  {"variant":"splittable","algorithm":"3/2 class-jumping (Thm 3)","makespan":"931/4","certificate":"2433/8","guarantee":"3/2","lower_bound":"811/4","ratio_vs_lower_bound":1.14797,"dual_calls":2,"metrics":{"total_load":"875","total_setup_time":"111","setup_count":5,"preemption_count":3,"machines_used":4,"idle_within_makespan":"56"}}

Telemetry profiles: counter values are deterministic per instance and
algorithm (timings are not, so tests only pin counter rows). The class
jumping searches show nonzero guess/jump work:

  $ bss generate -f expensive -m 16 -n 48 -s 1 > exp.txt

  $ bss solve exp.txt -v split -a 3/2 --profile=table | grep -E 'bound_tests|jump_steps|region_steps'
  | splittable_cj.bound_tests     |     7 |
  | splittable_cj.jump_steps      |     4 |
  | splittable_cj.region_steps    |     3 |

  $ bss solve exp.txt -v pmtn -a 3/2 --profile=csv | grep '^counter,pmtn'
  counter,pmtn_cj.bound_tests,51,
  counter,pmtn_cj.deviation1,1,
  counter,pmtn_cj.frontier_rounds,40,
  counter,pmtn_cj.jump_candidates,4,
  counter,pmtn_cj.jump_steps,5,
  counter,pmtn_cj.region_steps,6,
  counter,pmtn_dual.case_a,43,
  counter,pmtn_dual.case_b,10,
  counter,pmtn_dual.y_guard,43,

The binary search of Theorem 2 counts its guesses:

  $ bss solve exp.txt -v nonp -a 3/2+1/8 --profile=table | grep dual_search
  | dual_search.accepted    |     3 |
  | dual_search.guesses     |     6 |
  | dual_search.rejected    |     3 |

With --json the profile embeds as one more field:

  $ bss solve exp.txt -v split -a 3/2 --json --profile | python3 -c "import json,sys; d=json.load(sys.stdin); print(sorted(d['profile']['counters'].items()))"
  [('compaction.runs', 2), ('solver.won_construction', 1), ('splittable_cj.bound_tests', 7), ('splittable_cj.jump_candidates', 3), ('splittable_cj.jump_steps', 4), ('splittable_cj.region_steps', 3)]
