The socket front end: bss serve --listen speaks the bss-net/1 line
protocol (newline-delimited JSON over a Unix-domain socket), with
per-tenant admission quotas, slow-client eviction, graceful drain and
journal rotation; bss netsoak is the paired client. Everything pinned
here is seed-driven and timestamp-free.

The help documents the wire mode and its quota/drain knobs.

  $ bss serve --help=plain | grep -A 6 -- '--listen=SOCKET'
         --listen=SOCKET
             Serve the bss-net/1 line protocol on a Unix-domain socket at
             SOCKET instead of running a batch file. Per-tenant token-bucket
             quotas shed overload before the bounded queue; SIGINT/SIGTERM
             drain gracefully (stop accepting, finish in-flight requests,
             notify clients, flush the journal). Exactly one of --batch or
             --listen is required.
  $ bss serve --help=plain | grep -A 3 -- '--tenant-burst=N'
         --tenant-burst=N
             Arm per-tenant admission quotas (--listen only): each tenant's
             token bucket starts full at N tokens and an admission takes one;
             empty buckets shed with a typed overload answer.
  $ bss serve --help=plain | grep -A 2 -- '--drain-after=N'
         --drain-after=N
             Drain after N answers have been queued to clients —
             deterministic shutdown for scripted runs (--listen only).

Exactly one of --batch and --listen must be given.

  $ bss serve
  bss serve: exactly one of --batch or --listen is required
  [2]

Protocol probes over a live socket. A malformed frame draws a typed
error frame (the connection is not killed for it); ping draws pong; a
well-formed solve draws a result frame. Latency fields are the only
nondeterministic bytes, so the probe masks them.

  $ bss serve --listen bss.sock --seed 7 --drain-after 1 > server.log 2>&1 &
  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame 'garbage'
  {"schema":"bss-net/1","op":"error","error":{"kind":"invalid_input","field":"frame","reason":"not a JSON object: Json.parse: bad number  at offset 0"}}
  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame '{"schema":"bss-net/1","op":"ping"}'
  {"schema":"bss-net/1","op":"pong"}
  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame '{"schema":"bss-net/1","op":"solve","id":"probe-1","variant":"nonp","algorithm":"3/2","gen":{"family":"tiny","seed":"14","m":2,"n":8}}' | sed -E 's/"(solve|queue_wait)_ns":[0-9]+/"\1_ns":_/g'
  {"schema":"bss-net/1","op":"result","id":"probe-1","tenant":"default","status":"done","variant":"non-preemptive","rung":"requested","makespan":"43","routed":"requested","retries":0,"degraded":false,"checkpointed":false,"solve_ns":_,"queue_wait_ns":_}
  $ wait
  $ sed -E 's/written=[0-9]+ dropped=[0-9]+/written=_ dropped=_/' server.log
  net: listening on bss.sock
  net: draining (drain-after)
  net: conns accepted=3 refused=0 evicted=0 closed=3
  net: frames read=3 malformed=1 written=_ dropped=_ answers=1 dedup=0
  service: completed=1 checkpointed=0 rejected=0 aborted=0 retries=0
  rungs: requested=1
  journal: rotations=0 dirty=0
  drain: drain-after

A seeded overload run: 30 requests round-robined over three tenants
against a burst-4 quota with no refill. Admission is counted, not
clocked, so exactly the same 18 requests shed on every machine — 6 per
tenant, typed as overload answers, every id answered exactly once
(shed is an answer; the silence would be the bug). The server drains
itself after the 30th answer and both sides exit 0.

  $ bss serve --listen bss.sock --seed 7 --queue 64 --workers 2 --tenant-burst 4 --drain-after 30 --journal j > server.log 2>&1 &
  $ bss netsoak --connect bss.sock -n 30 --seed 7 --tenants acme,biz,chi --window 8 --connect-timeout-ms 20000
  netsoak: sent=30 answered=30 done=12 shed=18 rejected=0 aborted=0 dup=0
  netsoak: reconnects=0 protocol_errors=0 unanswered=0
  netsoak: shed acme=6 biz=6 chi=6
  $ wait
  $ sed -E 's/written=[0-9]+/written=_/' server.log
  net: listening on bss.sock
  net: draining (drain-after)
  net: conns accepted=1 refused=0 evicted=0 closed=1
  net: frames read=30 malformed=0 written=_ dropped=0 answers=30 dedup=0
  net: shed total=18 acme=6 biz=6 chi=6
  service: completed=12 checkpointed=0 rejected=0 aborted=0 retries=0
  rungs: requested=12
  journal: rotations=0 dirty=0
  drain: drain-after

The journal recorded the 12 completions; a second server life resumes
from it and answers the same stream from checkpoints — dedup answers
the already-journaled ids without re-solving anything.

  $ wc -l < j | tr -d ' '
  12
  $ bss serve --listen bss.sock --seed 7 --queue 64 --workers 2 --drain-after 30 --journal j --resume > server.log 2>&1 &
  $ bss netsoak --connect bss.sock -n 30 --seed 7 --tenants acme,biz,chi --window 8 --connect-timeout-ms 20000
  netsoak: sent=30 answered=30 done=30 shed=0 rejected=0 aborted=0 dup=0
  netsoak: reconnects=0 protocol_errors=0 unanswered=0
  $ wait
  $ grep -E 'service:|drain:' server.log
  service: completed=30 checkpointed=12 rejected=0 aborted=0 retries=0
  drain: drain-after
