The socket front end: bss serve --listen speaks the bss-net/1 line
protocol (newline-delimited JSON over a Unix-domain socket), with
per-tenant admission quotas, slow-client eviction, graceful drain and
journal rotation; bss netsoak is the paired client. Everything pinned
here is seed-driven and timestamp-free.

The help documents the wire mode and its quota/drain knobs.

  $ bss serve --help=plain | grep -A 6 -- '--listen=SOCKET'
         --listen=SOCKET
             Serve the bss-net/1 line protocol on a Unix-domain socket at
             SOCKET instead of running a batch file. Per-tenant token-bucket
             quotas shed overload before the bounded queue; SIGINT/SIGTERM
             drain gracefully (stop accepting, finish in-flight requests,
             notify clients, flush the journal). Exactly one of --batch or
             --listen is required.
  $ bss serve --help=plain | grep -A 3 -- '--tenant-burst=N'
         --tenant-burst=N
             Arm per-tenant admission quotas (--listen only): each tenant's
             token bucket starts full at N tokens and an admission takes one;
             empty buckets shed with a typed overload answer.
  $ bss serve --help=plain | grep -A 2 -- '--drain-after=N'
         --drain-after=N
             Drain after N answers have been queued to clients —
             deterministic shutdown for scripted runs (--listen only).

Exactly one of --batch and --listen must be given.

  $ bss serve
  bss serve: exactly one of --batch or --listen is required
  [2]

Protocol probes over a live socket. A malformed frame draws a typed
error frame (the connection is not killed for it); ping draws pong;
the telemetry control frames draw a typed error while the plane is
unarmed (no --window-every); a well-formed solve draws a result frame.
Latency fields are the only nondeterministic bytes, so the probe masks
them. Shutdown goodbyes are excluded from the written counter (a
client may close first), so the frame counters pin exactly.

  $ bss serve --listen bss.sock --seed 7 --drain-after 1 > server.log 2>&1 &
  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame 'garbage'
  {"schema":"bss-net/1","op":"error","error":{"kind":"invalid_input","field":"frame","reason":"not a JSON object: Json.parse: bad number  at offset 0"}}
  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame '{"schema":"bss-net/1","op":"ping"}'
  {"schema":"bss-net/1","op":"pong"}
  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame '{"schema":"bss-net/1","op":"stats"}'
  {"schema":"bss-net/1","op":"error","error":{"kind":"invalid_input","field":"op","reason":"telemetry plane disabled (--window-every)"}}
  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame '{"schema":"bss-net/1","op":"solve","id":"probe-1","variant":"nonp","algorithm":"3/2","gen":{"family":"tiny","seed":"14","m":2,"n":8}}' | sed -E 's/"(solve|queue_wait)_ns":[0-9]+/"\1_ns":_/g'
  {"schema":"bss-net/1","op":"result","id":"probe-1","tenant":"default","status":"done","variant":"non-preemptive","rung":"requested","makespan":"43","routed":"requested","retries":0,"degraded":false,"checkpointed":false,"solve_ns":_,"queue_wait_ns":_}
  $ wait
  $ cat server.log
  net: listening on bss.sock
  net: draining (drain-after)
  net: conns accepted=4 refused=0 evicted=0 closed=4
  net: frames read=4 malformed=1 written=4 dropped=0 answers=1 dedup=0
  service: completed=1 checkpointed=0 rejected=0 aborted=0 retries=0
  rungs: requested=1
  journal: rotations=0 dirty=0
  drain: drain-after

A seeded overload run: 30 requests round-robined over three tenants
against a burst-4 quota with no refill. Admission is counted, not
clocked, so exactly the same 18 requests shed on every machine — 6 per
tenant, typed as overload answers, every id answered exactly once
(shed is an answer; the silence would be the bug). The server drains
itself after the 30th answer and both sides exit 0.

  $ bss serve --listen bss.sock --seed 7 --queue 64 --workers 2 --tenant-burst 4 --drain-after 30 --journal j > server.log 2>&1 &
  $ bss netsoak --connect bss.sock -n 30 --seed 7 --tenants acme,biz,chi --window 8 --connect-timeout-ms 20000
  netsoak: sent=30 answered=30 done=12 shed=18 rejected=0 aborted=0 dup=0
  netsoak: reconnects=0 protocol_errors=0 unanswered=0
  netsoak: shed acme=6 biz=6 chi=6
  $ wait
  $ cat server.log
  net: listening on bss.sock
  net: draining (drain-after)
  net: conns accepted=1 refused=0 evicted=0 closed=1
  net: frames read=30 malformed=0 written=30 dropped=0 answers=30 dedup=0
  net: shed total=18 acme=6 biz=6 chi=6
  service: completed=12 checkpointed=0 rejected=0 aborted=0 retries=0
  rungs: requested=12
  journal: rotations=0 dirty=0
  drain: drain-after

The journal recorded the 12 completions; a second server life resumes
from it and answers the same stream from checkpoints — dedup answers
the already-journaled ids without re-solving anything.

  $ wc -l < j | tr -d ' '
  12
  $ bss serve --listen bss.sock --seed 7 --queue 64 --workers 2 --drain-after 30 --journal j --resume > server.log 2>&1 &
  $ bss netsoak --connect bss.sock -n 30 --seed 7 --tenants acme,biz,chi --window 8 --connect-timeout-ms 20000
  netsoak: sent=30 answered=30 done=30 shed=0 rejected=0 aborted=0 dup=0
  netsoak: reconnects=0 protocol_errors=0 unanswered=0
  $ wait
  $ grep -E 'service:|drain:' server.log
  service: completed=30 checkpointed=12 rejected=0 aborted=0 retries=0
  drain: drain-after

The live telemetry plane. --window-every N arms a windowed time
series inside the engine: every N processed requests close a window
whose counter deltas are exact against the previous one. Two control
frames read it — stats answers the live (still-open) window once,
watch subscribes the connection to the pushed stream, backfilled from
the in-memory ring so a late subscriber reads the same stream as an
early one. Control frames are quota-exempt and are not answers, so
--drain-after accounting is unchanged. Everything from "load" onward
in a window line is timing (masked here); the prefix — ids, spans,
counter deltas, breaker gauges, alerts — is deterministic.

  $ bss serve --listen bss.sock --seed 7 --workers 2 --window-every 4 > server.log 2>&1 &
  $ SRV=$!
  $ bss netsoak --connect bss.sock -n 8 --seed 7 --window 8 --connect-timeout-ms 20000
  netsoak: sent=8 answered=8 done=8 shed=0 rejected=0 aborted=0 dup=0
  netsoak: reconnects=0 protocol_errors=0 unanswered=0

A stats probe after those 8 answers: the live window is the open one
(id 2, nothing processed in it yet), marked live:true.

  $ bss netsoak --connect bss.sock --connect-timeout-ms 20000 --frame '{"schema":"bss-net/1","op":"stats"}' | sed -E 's/,"load":.*//'
  {"schema":"bss-watch/1","window":2,"upto":8,"span":0,"final":false,"live":true,"counters":{"service.aborted":0,"service.breaker.transitions":0,"service.completed":0,"service.rejected":0,"service.retries":0},"gauges":{"service.breaker.state.non-preemptive":0,"service.breaker.state.preemptive":0,"service.breaker.state.splittable":0},"alerts":[]

A watcher arriving after the fact reads the whole stream from the
ring: both closed windows, four completions each, no alerts (the
detectors are still in warmup and nothing is anomalous).

  $ bss top --connect bss.sock --json --windows 2 --connect-timeout-ms 20000 > top.jsonl
  $ sed -E 's/,"load":.*//' top.jsonl
  {"schema":"bss-watch/1","window":0,"upto":4,"span":4,"final":false,"live":false,"counters":{"service.aborted":0,"service.breaker.transitions":0,"service.completed":4,"service.rejected":0,"service.retries":0},"gauges":{"service.breaker.state.non-preemptive":0,"service.breaker.state.preemptive":0,"service.breaker.state.splittable":0},"alerts":[]
  {"schema":"bss-watch/1","window":1,"upto":8,"span":4,"final":false,"live":false,"counters":{"service.aborted":0,"service.breaker.transitions":0,"service.completed":4,"service.rejected":0,"service.retries":0},"gauges":{"service.breaker.state.non-preemptive":0,"service.breaker.state.preemptive":0,"service.breaker.state.splittable":0},"alerts":[]

Signal drain still exits cleanly; the stats window and the two
backfill windows are counted written frames (the watcher read them),
the goodbye is not.

  $ kill -TERM $SRV
  $ wait
  $ cat server.log
  net: listening on bss.sock
  net: draining (signal)
  net: conns accepted=3 refused=0 evicted=0 closed=3
  net: frames read=10 malformed=0 written=11 dropped=0 answers=8 dedup=0
  service: completed=8 checkpointed=0 rejected=0 aborted=0 retries=0
  rungs: requested=8
  journal: rotations=0 dirty=0
  drain: signal
