The resilient runtime: budgets, typed errors, fault injection and the
degradation ladder, end to end through the CLI.

  $ bss generate -f uniform -m 4 -n 16 -s 1 > inst.txt

An exhausted deadline degrades the requested 3/2 run to the certified
2-approximation; the report names the rung used and why the requested
rung failed:

  $ bss solve inst.txt -v nonp -a 3/2 --deadline-ms=0
  non-preemptive / 3/2 binary-search (Thm 8)
  makespan    277
  certificate 811/2 (makespan <= 2 * OPT)
  lower bound 811/4
  dual calls  0
  rung        two-approx
  fallback    requested failed: deadline_exceeded at nonp_search.guess

JSON carries the structured degradation record. The elapsed time in a
deadline error varies run to run, so project the stable fields:

  $ bss solve inst.txt -v nonp -a 3/2 --deadline-ms=0 --json | grep -o '"rung":"[a-z-]*"'
  "rung":"two-approx"
  "rung":"requested"

A fuel budget is fully deterministic, ticks included:

  $ bss solve inst.txt -v split -a 3/2 --fuel=1 --json | grep -o '"resilience":.*'
  "resilience":{"rung":"two-approx","degraded":true,"fuel_spent":2,"attempts":[{"rung":"requested","error":{"kind":"budget_exhausted","phase":"splittable_cj.bound_test","spent":2}}]}}

A budget generous enough for the requested rung changes nothing:

  $ bss solve inst.txt -v pmtn -a 2 --fuel=100 --json | grep -o '"rung":"[a-z-]*"'
  "rung":"requested"

Malformed instances surface typed errors, not stack traces:

  $ printf 'm 0\nsetups 5\njob 0 3\n' > bad.txt
  $ bss solve bad.txt -v nonp -a 2 --json
  {"error":{"kind":"invalid_input","field":"m","reason":"m < 1"}}
  [2]
  $ bss check bad.txt
  bss: invalid input (field m): m < 1
  [2]

Overflow-adjacent input is rejected with the offending line and field:

  $ printf 'm 2\nsetups 5\njob 0 99999999999999999999\n' > over.txt
  $ bss solve over.txt -v nonp -a 2 --json
  {"error":{"kind":"invalid_input","line":3,"field":"time","reason":"not a machine integer: 99999999999999999999"}}
  [2]

A chaos sweep drives the ladder under seeded fault injection and checks
the resilience contract: every run lands on some rung with a
checker-feasible schedule, and degraded cases go to a replay corpus:

  $ bss fuzz --seed 42 --cases 12 --chaos 1 --corpus corpus.txt
  fuzz --chaos: seed=42 chaos=1 cases=12 families=uniform,small-batches,single-job,expensive,zipf,anti-list,anti-wrap,tiny,near-overflow variants=non-preemptive,preemptive,splittable
  +------------+------+
  | rung       | runs |
  +------------+------+
  | requested  |   99 |
  | two-approx |    9 |
  +------------+------+
  chaos: 12 cases, 108 ladder runs, 8 degraded cases, 0 crashes, 0 infeasible
  corpus: recorded 8 ids in corpus.txt

  $ cat corpus.txt
  anti-list:5
  expensive:3
  single-job:11
  single-job:2
  small-batches:1
  tiny:7
  uniform:0
  zipf:4

Replaying the corpus re-runs every recorded case through the full
property oracle; all of them pass without the injected faults:

  $ bss fuzz --seed 42 --cases 12 --replay @corpus.txt | head -1
  replaying 8 corpus cases from corpus.txt
  $ bss fuzz --seed 42 --cases 12 --replay @corpus.txt | grep -c '^ok$'
  8
