Metrics surfaces: latency histograms in profiled output, periodic
metrics lines from the service runtime, and Chrome-trace export.
Timings are wall-clock, so these tests pin shape — field names, counts,
monotonicity — never durations.

A profiled solve embeds histograms in the JSON profile: one per span
path (per-call durations). Shape: every histogram carries count, sum,
min/max, the pinned quantile fields and sparse buckets.

  $ bss generate -f expensive -m 16 -n 48 -s 1 > exp.txt
  $ bss solve exp.txt -v split -a 3/2 --json --profile | python3 -c "
  > import json, sys
  > d = json.load(sys.stdin)
  > hists = d['profile']['hists']
  > print('span hists cover spans:', set(hists) >= set(d['profile']['spans']))
  > h = hists['solve']
  > print(sorted(h))
  > print('count', h['count'], 'buckets nonempty', len(h['buckets']) > 0)
  > print('quantiles ordered:', h['p50'] <= h['p90'] <= h['p99'] <= h['max'])
  > "
  span hists cover spans: True
  ['buckets', 'count', 'max', 'min', 'p50', 'p90', 'p99', 'sum']
  count 1 buckets nonempty True
  quantiles ordered: True

The profile table gains a histogram section between spans and counters:

  $ bss solve exp.txt -v split -a 3/2 --profile=table | grep -c '| histogram'
  1

`--metrics-every N` emits one JSON line per N completions with live
counters and histogram snapshots; the counter fields are seed-pinned:

  $ bss soak -n 24 --seed 7 --burst 8 --metrics-every 8 > soak.out
  $ grep -o '"metrics":{"completed":[0-9]*,"rejected":[0-9]*,"aborted":[0-9]*' soak.out
  "metrics":{"completed":8,"rejected":0,"aborted":0
  "metrics":{"completed":16,"rejected":0,"aborted":0
  "metrics":{"completed":24,"rejected":0,"aborted":0
  $ grep -c '"service.queue.wait_ns"' soak.out
  3

The service summary JSON carries the same histograms:

  $ bss soak -n 8 --seed 7 --json | python3 -c "
  > import json, sys
  > d = json.load(sys.stdin)
  > names = sorted(n for n in d['hists'] if not n.startswith('service.solve_ns.'))
  > print(names)
  > print('per-variant solve hists:', any(n.startswith('service.solve_ns.') for n in d['hists']))
  > print('retries hist count == done:', d['hists']['service.retries_per_request']['count'] == d['done'])
  > "
  ['service.queue.wait_ns', 'service.retries_per_request']
  per-variant solve hists: True
  retries hist count == done: True

`--trace-out` writes a Chrome trace_event file: one process (pid) per
recording domain, complete (X) span events nested by path, counter (C)
events, metadata (M) naming each process.

  $ bss solve exp.txt -v split -a 3/2 --trace-out trace.json > /dev/null
  $ python3 -c "
  > import json
  > d = json.load(open('trace.json'))
  > evs = d['traceEvents']
  > print('unit', d['displayTimeUnit'])
  > print('phases', sorted(set(e['ph'] for e in evs)))
  > xs = [e for e in evs if e['ph'] == 'X']
  > print('every X has ts/dur/args.path:', all('ts' in e and 'dur' in e and 'path' in e['args'] for e in xs))
  > roots = [e for e in xs if '/' not in e['args']['path']]
  > print('root spans', sorted(e['name'] for e in roots))
  > "
  unit ms
  phases ['C', 'M', 'X']
  every X has ts/dur/args.path: True
  root spans ['solve']

A multi-worker soak trace has one pid per worker domain plus the
coordinator (exact domain ids vary, so pin the count, not the ids).
Two-tier solves finish so fast that one worker can drain the whole queue
before the second domain spawns, so force the exact arithmetic tier to
keep both workers busy long enough to record:

  $ BSS_FORCE_EXACT=1 bss soak -n 12 --seed 7 --workers 2 --trace-out soak-trace.json > /dev/null
  $ python3 -c "
  > import json
  > d = json.load(open('soak-trace.json'))
  > pids = set(e['pid'] for e in d['traceEvents'] if e['ph'] == 'X')
  > print('several processes:', len(pids) >= 2)
  > "
  several processes: True
