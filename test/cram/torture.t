Systematic fault-schedule exploration: bss torture censuses every fault
opportunity a smoke workload exposes, runs every single-fault schedule
with crash-resume, judges each run against the crash-consistency
invariant oracle, and shrinks any violation to a minimal replayable
reproducer.

The census is a fault-free run under a counting scope: every chaos-site
hit — the solver and coordinator sites plus the journal's
write/rename/seal crash points — is a fault opportunity, and the counts
are deterministic:

  $ bss torture --census --dir .
  +--------------------------+------+
  | site                     | hits |
  +--------------------------+------+
  | journal.rename.after     |    4 |
  | journal.rename.before    |    4 |
  | journal.seal.after       |    2 |
  | journal.seal.before      |    2 |
  | journal.write.after      |    4 |
  | journal.write.before     |    4 |
  | nonp_search.guess        |   31 |
  | pmtn_cj.bound_test       |  142 |
  | pmtn_dual.test           |  145 |
  | service.admit            |   12 |
  | service.journal.flush    |    4 |
  | service.solve            |   12 |
  | splittable_cj.bound_test |   11 |
  | two_approx.solve         |   12 |
  +--------------------------+------+

A clean sweep over the journal sites: every occurrence of every
journal.* site, as both a contained fault (raise) and a simulated
process death (crash), with the journal chain reloaded and re-judged
after every run. No invariant violates on a healthy build, so the
sweep exits 0:

  $ bss torture --sites journal. --dir .
  torture: 40 single-fault and 0 pairwise schedules queued (0 pairs beyond the bound)
  torture: sites=14 opportunities=389
  torture: schedules explored=40 violated=0 truncated=0 salvaged=0

The deliberate-break hook is the harness's own acceptance test: treat
any fired journal.seal fault as a lost answer, and the oracle must
catch it, the shrinker must reduce it to one fault at occurrence 0, and
the reproducer must land on disk with exit 1:

  $ bss torture --sites journal.seal --break-invariant journal.seal --dir .
  torture: 8 single-fault and 0 pairwise schedules queued (0 pairs beyond the bound)
  torture: VIOLATED journal.seal.after@0:raise
  torture: VIOLATED journal.seal.after@0:crash
  torture: VIOLATED journal.seal.after@1:raise
  torture: VIOLATED journal.seal.after@1:crash
  torture: VIOLATED journal.seal.before@0:raise
  torture: VIOLATED journal.seal.before@0:crash
  torture: VIOLATED journal.seal.before@1:raise
  torture: VIOLATED journal.seal.before@1:crash
  torture: sites=14 opportunities=389
  torture: schedules explored=8 violated=8 truncated=0 salvaged=0
  violated: journal.seal.after@0:raise
    exactly-once: test hook: fault at journal.seal.after@0 treated as a lost answer
  violated: journal.seal.after@0:crash
    exactly-once: test hook: fault at journal.seal.after@0 treated as a lost answer
  violated: journal.seal.after@1:raise
    exactly-once: test hook: fault at journal.seal.after@1 treated as a lost answer
  violated: journal.seal.after@1:crash
    exactly-once: test hook: fault at journal.seal.after@1 treated as a lost answer
  violated: journal.seal.before@0:raise
    exactly-once: test hook: fault at journal.seal.before@0 treated as a lost answer
  violated: journal.seal.before@0:crash
    exactly-once: test hook: fault at journal.seal.before@0 treated as a lost answer
  violated: journal.seal.before@1:raise
    exactly-once: test hook: fault at journal.seal.before@1 treated as a lost answer
  violated: journal.seal.before@1:crash
    exactly-once: test hook: fault at journal.seal.before@1 treated as a lost answer
  shrunk to 1 fault(s) in 0 shrink run(s)
  reproducer: journal.seal.after@0:raise
    exactly-once: test hook: fault at journal.seal.after@0 treated as a lost answer
  wrote ./torture-reproducer.json
  [1]

Replaying the artifact reproduces the violation bit-identically — the
replayed report is byte-equal to the original reproducer:

  $ bss torture --replay torture-reproducer.json --dir . --out replayed.json
  reproducer: journal.seal.after@0:raise
    exactly-once: test hook: fault at journal.seal.after@0 treated as a lost answer
  wrote replayed.json
  [1]
  $ diff torture-reproducer.json replayed.json

The JSON sweep summary is a bss-metrics/1 object, so bss report
surfaces the exploration counters next to the service ones:

  $ bss torture --sites journal.seal --json --dir . > torture.json
  torture: 8 single-fault and 0 pairwise schedules queued (0 pairs beyond the bound)
  $ bss report --metrics torture.json
  metrics: torture.json (1 record)
  +--------------------------+-------+
  | counter                  | value |
  +--------------------------+-------+
  | completed                |    12 |
  | rejected                 |     0 |
  | aborted                  |     0 |
  | retries                  |     0 |
  | queue_peak               |     4 |
  | waves                    |     3 |
  | service.journal.salvaged |     0 |
  | sim.schedules.explored   |     8 |
  | sim.schedules.violated   |     0 |
  +--------------------------+-------+
  no histograms recorded
