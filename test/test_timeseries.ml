(* Tests for the live telemetry plane's windowed time-series engine:
   ring wraparound under bounded memory, exact delta/reconciliation
   against a from-scratch merge, the bss-watch/1 JSON round trip, the
   peek (stats) path leaving no trace, a pinned alert sequence under a
   seeded synthetic load, and the worker-count invariance of the window
   stream's deterministic prefix through the full service runtime. *)

open Bss_util
open Bss_obs
open Bss_service

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* a cumulative sample stream: [upto] ticks by 4, counters and one
   histogram grow deterministically *)
let synth_sample i =
  let h = Hist.create () in
  for k = 1 to 16 * i do
    Hist.record h (float_of_int (1 lsl (8 + (k mod 3))))
  done;
  {
    Timeseries.upto = 4 * i;
    counters = [ ("service.completed", 3 * i); ("service.retries", i) ];
    gauges = [ ("service.breaker.state.non-preemptive", i mod 3) ];
    load = [ ("service.queue.depth", i) ];
    hists = [ ("service.solve_ns.non-preemptive", Hist.snapshot h) ];
  }

let quiet_config =
  (* floors high enough that the synthetic streams stay alert-free *)
  { Timeseries.default_config with spike_min = 1e9; drift_min_ns = 1e18 }

(* ---------------- ring wraparound ---------------- *)

let test_ring_wraparound () =
  let t = Timeseries.create { quiet_config with capacity = 4 } in
  for i = 1 to 10 do
    ignore (Timeseries.push t (synth_sample i))
  done;
  check int_c "pushed counts every window" 10 (Timeseries.pushed t);
  let ws = Timeseries.windows t in
  check int_c "ring keeps capacity windows" 4 (List.length ws);
  check bool_c "oldest evicted first, ids contiguous" true
    (List.map (fun (w : Timeseries.window) -> w.Timeseries.id) ws = [ 6; 7; 8; 9 ]);
  (* the retained windows are the last pushes, not stale slots *)
  List.iter
    (fun (w : Timeseries.window) ->
      check int_c
        (Printf.sprintf "window %d upto" w.Timeseries.id)
        (4 * (w.Timeseries.id + 1))
        w.Timeseries.upto)
    ws

(* ---------------- delta exactness and reconciliation ---------------- *)

(* summing a series' deltas across the stream must reproduce the final
   cumulative counter, and merging the per-window histogram deltas must
   reproduce the final cumulative snapshot — the reconciliation the
   acceptance criteria pin over the wire *)
let test_deltas_reconcile () =
  let t = Timeseries.create quiet_config in
  let n = 9 in
  let ws = List.init n (fun i -> Timeseries.push t (synth_sample (i + 1))) in
  let sum series =
    List.fold_left
      (fun acc (w : Timeseries.window) ->
        acc + Option.value ~default:0 (List.assoc_opt series w.Timeseries.counters))
      0 ws
  in
  let final = synth_sample n in
  check int_c "completed deltas sum to cumulative"
    (List.assoc "service.completed" final.Timeseries.counters)
    (sum "service.completed");
  check int_c "retries deltas sum to cumulative"
    (List.assoc "service.retries" final.Timeseries.counters)
    (sum "service.retries");
  check int_c "spans sum to upto" final.Timeseries.upto
    (List.fold_left (fun acc (w : Timeseries.window) -> acc + w.Timeseries.span) 0 ws);
  (* histogram deltas merge back to the from-scratch cumulative *)
  let merged =
    List.fold_left
      (fun acc (w : Timeseries.window) ->
        Hist.merge acc (List.assoc "service.solve_ns.non-preemptive" w.Timeseries.hists))
      Hist.empty ws
  in
  let cumulative = List.assoc "service.solve_ns.non-preemptive" final.Timeseries.hists in
  check int_c "merged hist count" cumulative.Hist.count merged.Hist.count;
  check (Alcotest.float 1e-6) "merged hist sum" cumulative.Hist.sum merged.Hist.sum;
  check bool_c "merged hist buckets" true (merged.Hist.counts = cumulative.Hist.counts);
  (* a counter appearing mid-stream still deltas against 0 *)
  let t2 = Timeseries.create quiet_config in
  ignore
    (Timeseries.push t2
       { Timeseries.empty_sample with upto = 1; counters = [ ("a", 2) ] });
  let w =
    Timeseries.push t2
      { Timeseries.empty_sample with upto = 2; counters = [ ("a", 3); ("b", 5) ] }
  in
  check bool_c "late counter deltas against zero" true
    (w.Timeseries.counters = [ ("a", 1); ("b", 5) ])

(* ---------------- bss-watch/1 JSON round trip ---------------- *)

let test_json_round_trip () =
  let t = Timeseries.create { quiet_config with spike_min = 1.0; spike_factor = 0.0; warmup = 0 } in
  ignore (Timeseries.push t (synth_sample 1));
  let w = Timeseries.push t ~final:true (synth_sample 3) in
  check bool_c "the detector fired (alerts round-trip too)" true (w.Timeseries.alerts <> []);
  let line = Timeseries.window_json w in
  let idx sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length line then max_int
      else if String.sub line i n = sub then i
      else go (i + 1)
    in
    go 0
  in
  check bool_c "deterministic prefix precedes the timing tail" true
    (idx "\"alerts\"" < idx "\"load\"" && idx "\"load\"" < idx "\"hists\"");
  match Json.parse line with
  | Error e -> Alcotest.failf "window_json does not parse: %s" e
  | Ok v -> (
    match Timeseries.window_of_json v with
    | Error e -> Alcotest.failf "window_of_json: %s" e
    | Ok w' ->
      check int_c "id" w.Timeseries.id w'.Timeseries.id;
      check int_c "upto" w.Timeseries.upto w'.Timeseries.upto;
      check int_c "span" w.Timeseries.span w'.Timeseries.span;
      check bool_c "final" w.Timeseries.final w'.Timeseries.final;
      check bool_c "live" w.Timeseries.live w'.Timeseries.live;
      check bool_c "counters" true (w.Timeseries.counters = w'.Timeseries.counters);
      check bool_c "gauges" true (w.Timeseries.gauges = w'.Timeseries.gauges);
      check int_c "alerts" (List.length w.Timeseries.alerts) (List.length w'.Timeseries.alerts);
      List.iter2
        (fun (a : Timeseries.alert) (a' : Timeseries.alert) ->
          check string_c "alert kind" a.Timeseries.kind a'.Timeseries.kind;
          check string_c "alert series" a.Timeseries.series a'.Timeseries.series)
        w.Timeseries.alerts w'.Timeseries.alerts;
      check bool_c "load" true (w.Timeseries.load = w'.Timeseries.load);
      check bool_c "hist counts survive" true
        (List.map
           (fun (k, (h : Hist.snapshot)) -> (k, h.Hist.count, h.Hist.counts))
           w.Timeseries.hists
        = List.map
            (fun (k, (h : Hist.snapshot)) -> (k, h.Hist.count, h.Hist.counts))
            w'.Timeseries.hists))

(* ---------------- peek leaves no trace ---------------- *)

let test_peek_is_pure () =
  let t = Timeseries.create quiet_config in
  ignore (Timeseries.push t (synth_sample 1));
  let live = Timeseries.peek t (synth_sample 2) in
  check bool_c "peek marked live" true live.Timeseries.live;
  check bool_c "peek fires no alerts" true (live.Timeseries.alerts = []);
  check int_c "peek stores nothing" 1 (Timeseries.pushed t);
  check int_c "peek raises no alert totals" 0 (Timeseries.alert_total t);
  (* the subsequent push is byte-identical to what it would have been:
     peek updated no baselines and no prev sample *)
  let w = Timeseries.push t (synth_sample 2) in
  check bool_c "push after peek deltas from the same prev" true
    (w.Timeseries.counters = [ ("service.completed", 3); ("service.retries", 1) ]);
  check int_c "push after peek keeps the id sequence" 1 w.Timeseries.id

(* ---------------- pinned alert sequence ---------------- *)

(* a seeded synthetic load with one engineered rate spike and one p99
   collapse-then-drift: detection is a pure function of the sample
   sequence, so the exact alert sequence pins *)
let test_pinned_alert_sequence () =
  let config =
    {
      Timeseries.default_config with
      warmup = 2;
      spike_factor = 3.0;
      spike_min = 8.0;
      drift_factor = 4.0;
      drift_min_count = 8;
      drift_min_ns = 1000.0;
    }
  in
  let t = Timeseries.create config in
  (* cumulative streams: steady 4/window, then a 40-burst at window 4;
     latency steady at ~2^10 ns, then 2^16 ns from window 5 on *)
  let completed = [| 4; 8; 12; 16; 56; 60; 64; 68 |] in
  let lat_exp = [| 10; 10; 10; 10; 10; 16; 16; 16 |] in
  let h = Hist.create () in
  let alerts = ref [] in
  Array.iteri
    (fun i c ->
      let per_window = if i = 0 then c else c - completed.(i - 1) in
      for _ = 1 to per_window * 4 do
        Hist.record h (Float.of_int (1 lsl lat_exp.(i)))
      done;
      let w =
        Timeseries.push t
          {
            Timeseries.upto = (i + 1) * 4;
            counters = [ ("service.completed", c) ];
            gauges = [];
            load = [];
            hists = [ ("service.solve_ns", Hist.snapshot h) ];
          }
      in
      alerts :=
        !alerts
        @ List.map
            (fun (a : Timeseries.alert) -> (w.Timeseries.id, a.Timeseries.kind, a.Timeseries.series))
            w.Timeseries.alerts)
    completed;
  check bool_c "exactly the engineered anomalies fire, in order" true
    (!alerts
    = [
        (4, "rate_spike", "service.completed");
        (5, "p99_drift", "service.solve_ns");
      ]);
  check int_c "alert_total agrees" 2 (Timeseries.alert_total t)

(* ---------------- worker-count invariance through the runtime ---------------- *)

(* the acceptance criterion end to end: the same seeded stream through
   the full service runtime at 1 worker and at 4 workers produces
   bit-identical window streams up to the timing tail *)
let strip_timing line =
  let marker = ",\"load\":" in
  let n = String.length marker in
  let rec find i =
    if i + n > String.length line then line
    else if String.sub line i n = marker then String.sub line 0 i
    else find (i + 1)
  in
  find 0

let window_stream workers =
  let windows = ref [] in
  let config =
    {
      Runtime.default_config with
      workers = Some workers;
      seed = 11;
      window_every = Some 4;
    }
  in
  let requests = Request.soak_stream ~seed:11 ~requests:19 () in
  let s = Runtime.run ~on_window:(fun w -> windows := w :: !windows) config requests in
  (s, List.rev_map (fun w -> strip_timing (Timeseries.window_json w)) !windows |> List.rev)

let test_worker_count_invariant_stream () =
  let s1, one = window_stream 1 in
  let s4, four = window_stream 4 in
  check bool_c "1 = 4 workers, deterministic prefix" true (one = four);
  (* 19 requests at window-every 4: windows 0..3 plus the final partial *)
  check int_c "stream length" 5 (List.length one);
  (* and the stream reconciles with the summary *)
  let total =
    List.fold_left
      (fun acc line ->
        match Json.parse (line ^ "}") with
        | Error _ -> Alcotest.fail "stripped prefix must re-close into JSON"
        | Ok v -> (
          match Json.member "counters" v with
          | Some (Json.Obj kvs) -> (
            match List.assoc_opt "service.completed" kvs with
            | Some (Json.Num n) -> acc + int_of_float n
            | _ -> acc)
          | _ -> acc))
      0 one
  in
  check int_c "cumulative completions reconcile with the summary" s1.Runtime.completed total;
  check int_c "both runs completed everything" s1.Runtime.completed s4.Runtime.completed

let () =
  Alcotest.run "timeseries"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps the newest windows" `Quick test_ring_wraparound;
        ] );
      ( "deltas",
        [
          Alcotest.test_case "deltas reconcile with from-scratch merge" `Quick
            test_deltas_reconcile;
        ] );
      ( "json",
        [
          Alcotest.test_case "bss-watch/1 round trip" `Quick test_json_round_trip;
        ] );
      ( "peek",
        [ Alcotest.test_case "stats peek leaves no trace" `Quick test_peek_is_pure ] );
      ( "alerts",
        [
          Alcotest.test_case "pinned alert sequence under seeded load" `Quick
            test_pinned_alert_sequence;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "window stream is worker-count invariant" `Quick
            test_worker_count_invariant_stream;
        ] );
    ]
