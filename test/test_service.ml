(* Tests for the batch-service runtime: bounded-queue backpressure,
   deterministic backoff, the circuit-breaker state machine, crash-safe
   checkpointing — and the layer's acceptance criteria: kill-and-resume
   determinism (a run stopped at ANY point and resumed yields exactly the
   uninterrupted run's result set) and a breaker that demonstrably trips
   and recovers under injected faults, visible in the obs counters. *)

open Bss_util
open Bss_instances
open Bss_service
module Rerror = Bss_resilience.Error
module Chaos = Bss_resilience.Chaos
module Probe = Bss_obs.Probe

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) ("bss_test_" ^ name)

(* ---------------- atomic file replacement ---------------- *)

let test_atomic_write () =
  let path = tmp_path "atomic.txt" in
  if Sys.file_exists path then Sys.remove path;
  Atomic_file.write path "first\n";
  let read () = In_channel.with_open_bin path In_channel.input_all in
  check string_c "created" "first\n" (read ());
  Atomic_file.write path "second, longer contents\n";
  check string_c "replaced" "second, longer contents\n" (read ());
  (* no temp droppings left beside the target *)
  let dir = Filename.dirname path and base = Filename.basename path in
  let leftovers =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> f <> base && String.length f > String.length base
                             && String.sub f 1 (String.length base) = base)
  in
  check int_c "no temp files left" 0 (List.length leftovers);
  Sys.remove path

(* ---------------- bounded queue ---------------- *)

let test_bqueue_backpressure () =
  let q = Bqueue.create ~capacity:2 in
  check int_c "capacity" 2 (Bqueue.capacity q);
  (match Bqueue.admit q 1 with Ok () -> () | Error _ -> Alcotest.fail "first admit");
  (match Bqueue.admit q 2 with Ok () -> () | Error _ -> Alcotest.fail "second admit");
  (match Bqueue.admit q 3 with
  | Error (Rerror.Overloaded { capacity; pending }) ->
    check int_c "capacity in error" 2 capacity;
    check int_c "pending in error" 2 pending
  | _ -> Alcotest.fail "third admit must be Overloaded");
  check bool_c "FIFO drain" true (Bqueue.drain q = [ 1; 2 ]);
  check int_c "empty after drain" 0 (Bqueue.length q);
  (match Bqueue.admit q 4 with Ok () -> () | Error _ -> Alcotest.fail "admit after drain")

let test_bqueue_admit_chaos () =
  let q = Bqueue.create ~capacity:4 in
  Chaos.with_plan
    [ ("service.admit", 0, Chaos.Raise) ]
    (fun () ->
      (match Bqueue.admit q 1 with
      | exception Chaos.Injected { site; _ } -> check string_c "site" "service.admit" site
      | _ -> Alcotest.fail "armed admission must raise Injected");
      match Bqueue.admit q 2 with
      | Ok () -> check int_c "later admit lands" 1 (Bqueue.length q)
      | _ -> Alcotest.fail "hit 1 is not armed")

(* ---------------- backoff ---------------- *)

let test_backoff_deterministic () =
  let policy = { Backoff.base_us = 100; factor = 2; cap_us = 1_000 } in
  let delays seed =
    let rng = Prng.create seed in
    List.init 6 (fun i -> Backoff.delay_us policy rng ~attempt:(i + 1))
  in
  check bool_c "same seed, same schedule" true (delays 7 = delays 7);
  check bool_c "different seed, different jitter" true (delays 7 <> delays 8);
  List.iteri
    (fun i d ->
      let base = min 1_000 (100 * (1 lsl i)) in
      check bool_c (Printf.sprintf "attempt %d lower bound" (i + 1)) true (d >= base);
      check bool_c (Printf.sprintf "attempt %d capped" (i + 1)) true (d <= base + (base / 2)))
    (delays 7)

let test_backoff_wait_monotonic () =
  let t0 = Monotonic_clock.now () in
  Backoff.wait 200;
  let elapsed = Int64.sub (Monotonic_clock.now ()) t0 in
  check bool_c "waited >= 200us" true (Int64.compare elapsed 200_000L >= 0)

(* ---------------- circuit breaker state machine ---------------- *)

let closed_0 = Breaker.Closed { failures = 0 }

let test_breaker_cycle () =
  let b = Breaker.make ~k:2 ~cooldown:2 () in
  check bool_c "starts closed" true (Breaker.state b = closed_0);
  (* two consecutive failures trip it *)
  check bool_c "closed routes requested" true (Breaker.route b = Breaker.Requested);
  Breaker.record b ~route:Breaker.Requested ~ok:false;
  check bool_c "one failure stays closed" true (Breaker.state b = Breaker.Closed { failures = 1 });
  Breaker.record b ~route:Breaker.Requested ~ok:false;
  check bool_c "tripped open" true (Breaker.state b = Breaker.Open { remaining = 2 });
  (* cooldown: two fallback-routed requests *)
  check bool_c "open routes fallback" true (Breaker.route b = Breaker.Fallback);
  Breaker.record b ~route:Breaker.Fallback ~ok:true;
  Breaker.record b ~route:Breaker.Fallback ~ok:true;
  check bool_c "cooldown spent -> half-open" true (Breaker.state b = Breaker.Half_open { probing = false });
  (* exactly one probe; the rest of the wave falls back *)
  check bool_c "half-open probes" true (Breaker.route b = Breaker.Probe);
  check bool_c "single probe in flight" true (Breaker.route b = Breaker.Fallback);
  (* failed probe re-opens *)
  Breaker.record b ~route:Breaker.Probe ~ok:false;
  check bool_c "failed probe re-opens" true (Breaker.state b = Breaker.Open { remaining = 2 });
  Breaker.record b ~route:Breaker.Fallback ~ok:true;
  Breaker.record b ~route:Breaker.Fallback ~ok:true;
  check bool_c "probe again" true (Breaker.route b = Breaker.Probe);
  (* successful probe closes *)
  Breaker.record b ~route:Breaker.Probe ~ok:true;
  check bool_c "closed again" true (Breaker.state b = closed_0);
  check bool_c "transition log" true
    (Breaker.transitions b
    = [ "closed->open"; "open->half-open"; "half-open->open"; "open->half-open"; "half-open->closed" ])

let test_breaker_success_resets () =
  let b = Breaker.make ~k:3 ~cooldown:1 () in
  Breaker.record b ~route:Breaker.Requested ~ok:false;
  Breaker.record b ~route:Breaker.Requested ~ok:false;
  Breaker.record b ~route:Breaker.Requested ~ok:true;
  check bool_c "success resets the streak" true (Breaker.state b = closed_0);
  check int_c "no transitions" 0 (List.length (Breaker.transitions b))

let test_breaker_probe_chaos () =
  let b = Breaker.make ~k:1 ~cooldown:1 () in
  Breaker.record b ~route:Breaker.Requested ~ok:false;
  Breaker.record b ~route:Breaker.Fallback ~ok:true;
  check bool_c "half-open" true (Breaker.state b = Breaker.Half_open { probing = false });
  Chaos.with_plan
    [ ("service.breaker.probe", 0, Chaos.Raise) ]
    (fun () ->
      match Breaker.route b with
      | exception Chaos.Injected { site; _ } ->
        check string_c "probe fault site" "service.breaker.probe" site;
        (* the runtime contains this by recording a failed probe *)
        Breaker.record b ~route:Breaker.Probe ~ok:false;
        check bool_c "re-opened" true (Breaker.state b = Breaker.Open { remaining = 1 })
      | _ -> Alcotest.fail "armed probe point must raise")

(* Concurrent callers racing a half-open breaker: route decides and
   marks the probe in one critical section, so however many domains race,
   exactly one wins the probe and the rest fall back — never a raced
   second probe. *)
let test_breaker_concurrent_probe () =
  for round = 1 to 8 do
    let b = Breaker.make ~k:1 ~cooldown:1 () in
    Breaker.record b ~route:Breaker.Requested ~ok:false;
    Breaker.record b ~route:Breaker.Fallback ~ok:true;
    check bool_c "half-open" true (Breaker.state b = Breaker.Half_open { probing = false });
    let n = 6 in
    let ready = Atomic.make 0 in
    let domains =
      List.init n (fun _ ->
          Domain.spawn (fun () ->
              (* barrier: maximize the race on the decide-and-mark section *)
              Atomic.incr ready;
              while Atomic.get ready < n do
                Domain.cpu_relax ()
              done;
              Breaker.route b))
    in
    let routes = List.map Domain.join domains in
    let count r = List.length (List.filter (fun x -> x = r) routes) in
    check int_c (Printf.sprintf "round %d: exactly one probe" round) 1 (count Breaker.Probe);
    check int_c (Printf.sprintf "round %d: losers fall back" round) (n - 1) (count Breaker.Fallback);
    check int_c (Printf.sprintf "round %d: none requested" round) 0 (count Breaker.Requested);
    (* the single probe's outcome still drives the state machine *)
    Breaker.record b ~route:Breaker.Probe ~ok:true;
    check bool_c (Printf.sprintf "round %d: probe closes" round) true (Breaker.state b = closed_0)
  done

(* ---------------- journal ---------------- *)

let test_journal_roundtrip () =
  let path = tmp_path "journal.tsv" in
  if Sys.file_exists path then Sys.remove path;
  let j = Journal.fresh path in
  Journal.add j { Journal.id = "a"; rung = "requested"; makespan = "42" };
  Journal.add j { Journal.id = "b"; rung = "two-approx"; makespan = "7/2" };
  Journal.add j { Journal.id = "a"; rung = "list-scheduling"; makespan = "99" };
  check int_c "dedup by id" 2 (List.length (Journal.entries j));
  check int_c "dirty before flush" 2 (Journal.dirty j);
  Journal.flush j;
  check int_c "clean after flush" 0 (Journal.dirty j);
  let j' = Journal.load path in
  check bool_c "mem a" true (Journal.mem j' "a");
  check bool_c "mem b" true (Journal.mem j' "b");
  check bool_c "entries survive, order kept, first add wins" true
    (Journal.entries j'
    = [
        { Journal.id = "a"; rung = "requested"; makespan = "42" };
        { Journal.id = "b"; rung = "two-approx"; makespan = "7/2" };
      ]);
  Sys.remove path

let test_journal_missing_and_corrupt () =
  let path = tmp_path "journal_missing.tsv" in
  if Sys.file_exists path then Sys.remove path;
  check int_c "missing file is empty" 0 (List.length (Journal.entries (Journal.load path)));
  (* a torn file: two good entries, then a line cut mid-write by a crash,
     then a stray entry after the tear. Salvage keeps the valid prefix,
     abandons everything from the tear on, and reports a typed detail. *)
  Out_channel.with_open_bin path (fun oc ->
      output_string oc "a\trequested\t10\nb\trequested\t20\nc\treq";
      output_string oc "\nd\trequested\t40\n");
  let j = Journal.load path in
  check bool_c "valid prefix salvaged" true
    (Journal.entries j
    = [
        { Journal.id = "a"; rung = "requested"; makespan = "10" };
        { Journal.id = "b"; rung = "requested"; makespan = "20" };
      ]);
  check bool_c "suffix after the tear abandoned" true (not (Journal.mem j "d"));
  (match Journal.salvaged j with
  | [ Bss_resilience.Error.Invalid_input { line = Some 3; field = "journal"; _ } ] -> ()
  | other ->
    Alcotest.fail
      (Printf.sprintf "expected one Invalid_input at line 3, got [%s]"
         (String.concat "; " (List.map Bss_resilience.Error.to_string other))));
  check bool_c "healthy journal reports no salvage" true
    (Journal.salvaged (Journal.fresh path) = []);
  (* the salvage is counted when a recording is installed *)
  let (), report =
    Bss_obs.Probe.with_recording (fun () -> ignore (Journal.load path))
  in
  check int_c "service.journal.salvaged counted" 1
    (Bss_obs.Report.counter report "service.journal.salvaged");
  Sys.remove path

let test_journal_flush_chaos_keeps_old () =
  let path = tmp_path "journal_chaos.tsv" in
  if Sys.file_exists path then Sys.remove path;
  let j = Journal.fresh path in
  Journal.add j { Journal.id = "a"; rung = "requested"; makespan = "1" };
  Journal.flush j;
  Journal.add j { Journal.id = "b"; rung = "requested"; makespan = "2" };
  (match Chaos.with_plan [ ("service.journal.flush", 0, Chaos.Raise) ] (fun () -> Journal.flush j) with
  | exception Chaos.Injected _ -> ()
  | _ -> Alcotest.fail "armed flush must raise");
  check int_c "still dirty" 1 (Journal.dirty j);
  check bool_c "old journal intact" true
    (Journal.entries (Journal.load path) = [ { Journal.id = "a"; rung = "requested"; makespan = "1" } ]);
  Journal.flush j;
  check int_c "recovered" 2 (List.length (Journal.entries (Journal.load path)));
  Sys.remove path

(* Zero-downtime rotation: flushes seal the active file into numbered
   segments; the sealed history is never rewritten, and a resume walks
   the whole chain in order. *)
let test_journal_rotation () =
  let path = tmp_path "rotate.tsv" in
  let clean () =
    if Sys.file_exists path then Sys.remove path;
    for i = 1 to 6 do
      let seg = path ^ "." ^ string_of_int i in
      if Sys.file_exists seg then Sys.remove seg
    done
  in
  clean ();
  let entry i = { Journal.id = Printf.sprintf "e%d" i; rung = "requested"; makespan = string_of_int i } in
  let j = Journal.fresh ~rotate_every:2 path in
  for i = 1 to 5 do
    Journal.add j (entry i);
    Journal.flush j
  done;
  check int_c "two sealed segments" 2 (Journal.segments j);
  check bool_c "segment files on disk" true
    (Sys.file_exists (path ^ ".1") && Sys.file_exists (path ^ ".2"));
  (* the active file holds only the unsealed tail *)
  check string_c "active file is the tail" "e5\trequested\t5\n"
    (In_channel.with_open_bin path In_channel.input_all);
  let seg1 = In_channel.with_open_bin (path ^ ".1") In_channel.input_all in
  (* resume spans the chain, oldest first *)
  let j' = Journal.load ~rotate_every:2 path in
  check int_c "resume sees the segments" 2 (Journal.segments j');
  check bool_c "entries span the chain in order" true
    (Journal.entries j' = List.init 5 (fun i -> entry (i + 1)));
  (* the next seal starts after the restored tail; sealed history is immutable *)
  Journal.add j' (entry 6);
  Journal.flush j';
  check int_c "rotated again on resume" 3 (Journal.segments j');
  check string_c "sealed segment untouched" seg1
    (In_channel.with_open_bin (path ^ ".1") In_channel.input_all);
  check bool_c "nothing lost" true
    (Journal.entries (Journal.load ~rotate_every:2 path) = List.init 6 (fun i -> entry (i + 1)));
  check bool_c "rotate_every < 1 rejected" true
    (match Journal.fresh ~rotate_every:0 path with
    | exception Invalid_argument _ -> true
    | _ -> false);
  clean ()

(* Salvage at segment boundaries: a corrupt line in a sealed segment
   abandons only that segment's tail — the rest of the chain, the active
   file included, still loads — and the typed detail cites the segment
   file. A corrupt active file leaves the sealed history untouched and
   cites the active path. Either way the abandoned entries are simply
   re-recorded by the resumed run. *)
let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let chain_entry i =
  { Journal.id = Printf.sprintf "s%d" i; rung = "requested"; makespan = string_of_int i }

(* rotate_every 2, five adds with a flush each: seg1 = s1 s2, seg2 = s3 s4,
   active = s5 *)
let build_chain path =
  if Sys.file_exists path then Sys.remove path;
  for i = 1 to 6 do
    let seg = path ^ "." ^ string_of_int i in
    if Sys.file_exists seg then Sys.remove seg
  done;
  let j = Journal.fresh ~rotate_every:2 path in
  for i = 1 to 5 do
    Journal.add j (chain_entry i);
    Journal.flush j
  done

let salvage_detail name j =
  match Journal.salvaged j with
  | [ Bss_resilience.Error.Invalid_input { line; field = "journal"; reason } ] -> (line, reason)
  | other ->
    Alcotest.failf "%s: expected one Invalid_input, got [%s]" name
      (String.concat "; " (List.map Bss_resilience.Error.to_string other))

let test_journal_salvage_sealed_segment () =
  let path = tmp_path "salvage_seg.tsv" in
  build_chain path;
  (* tear seg2 mid-entry: s3 stays valid, s4 is cut *)
  Out_channel.with_open_bin (path ^ ".2") (fun oc ->
      output_string oc "s3\trequested\t3\ns4\treq");
  let j = Journal.load ~rotate_every:2 path in
  check bool_c "valid prefix of the torn segment kept" true (Journal.mem j "s3");
  check bool_c "tail of the torn segment abandoned" true (not (Journal.mem j "s4"));
  check bool_c "active file still loads past the corrupt segment" true (Journal.mem j "s5");
  check int_c "chain length still counted" 2 (Journal.segments j);
  let line, reason = salvage_detail "sealed segment" j in
  check bool_c "detail cites the segment line" true (line = Some 2);
  check bool_c "detail cites the segment file" true (contains ~needle:(path ^ ".2") reason);
  (* the resumed run re-records the abandoned entry; nothing else moves *)
  Journal.add j (chain_entry 4);
  Journal.flush j;
  let j' = Journal.load ~rotate_every:2 path in
  check bool_c "re-solved entry persisted" true (Journal.mem j' "s4");
  check int_c "every id recovered" 5 (List.length (Journal.entries j'));
  build_chain path (* clean replacement chain, then remove *);
  Sys.remove path;
  for i = 1 to 6 do
    let seg = path ^ "." ^ string_of_int i in
    if Sys.file_exists seg then Sys.remove seg
  done

let test_journal_salvage_active_file () =
  let path = tmp_path "salvage_active.tsv" in
  build_chain path;
  (* tear the active file instead: the sealed history must be untouched *)
  Out_channel.with_open_bin path (fun oc -> output_string oc "s5\trequested\t5\ns6\treq");
  let j = Journal.load ~rotate_every:2 path in
  check bool_c "sealed chain intact" true
    (List.for_all (fun i -> Journal.mem j (Printf.sprintf "s%d" i)) [ 1; 2; 3; 4 ]);
  check bool_c "valid prefix of the active file kept" true (Journal.mem j "s5");
  check bool_c "torn active tail abandoned" true (not (Journal.mem j "s6"));
  let line, reason = salvage_detail "active file" j in
  check bool_c "detail cites the active line" true (line = Some 2);
  check bool_c "detail cites the active file, not a segment" true
    (contains ~needle:(path ^ "; salvaged") reason);
  Sys.remove path;
  for i = 1 to 6 do
    let seg = path ^ "." ^ string_of_int i in
    if Sys.file_exists seg then Sys.remove seg
  done

(* ---------------- the runtime ---------------- *)

(* a deterministic mixed batch: every variant, generated instances *)
let batch n =
  List.init n (fun i ->
      let variants = [| Variant.Nonpreemptive; Variant.Preemptive; Variant.Splittable |] in
      {
        Request.id = Printf.sprintf "r%02d" i;
        tenant = Request.default_tenant;
        variant = variants.(i mod 3);
        algorithm = Bss_core.Solver.Approx3_2;
        source =
          Request.Gen { family = "uniform"; seed = 1000 + i; m = 2 + (i mod 3); n = 10 + (i mod 7) };
      })

let base_config =
  { Runtime.default_config with workers = Some 2; retries = 1; checkpoint_every = 1 }

let result_set (s : Runtime.summary) =
  s.Runtime.outcomes
  |> List.filter (fun (o : Runtime.outcome) -> o.Runtime.status = Runtime.Done)
  |> List.map (fun (o : Runtime.outcome) ->
         (o.Runtime.request.Request.id, Option.get o.Runtime.rung, Option.get o.Runtime.makespan))
  |> List.sort compare

let test_run_clean () =
  let s = Runtime.run base_config (batch 9) in
  check int_c "all done" 9 s.Runtime.completed;
  check int_c "none rejected" 0 s.Runtime.rejected;
  check int_c "none aborted" 0 s.Runtime.aborted;
  check int_c "none dropped" 0 s.Runtime.dropped;
  check bool_c "requested rung everywhere" true
    (s.Runtime.rungs = [ ("requested", 9) ]);
  (* the runtime's results are the solver's results *)
  List.iter
    (fun (o : Runtime.outcome) ->
      let r =
        Bss_core.Solver.solve ~algorithm:Bss_core.Solver.Approx3_2 o.Runtime.request.Request.variant
          (Request.instance o.Runtime.request)
      in
      check string_c (o.Runtime.request.Request.id ^ " makespan matches direct solve")
        (Rat.to_string (Schedule.makespan r.Bss_core.Solver.schedule))
        (Option.get o.Runtime.makespan))
    s.Runtime.outcomes

let test_run_worker_count_invariant () =
  let run workers =
    result_set (Runtime.run { base_config with workers = Some workers } (batch 12))
  in
  let one = run 1 in
  check bool_c "1 = 2 workers" true (one = run 2);
  check bool_c "1 = 4 workers" true (one = run 4)

(* The retry jitter stream is a pure function of (run seed, request id,
   attempt): the runtime seeds one private Prng per request
   (seed lxor djb2 id), and Backoff keeps no global state. So the
   schedules a single domain computes are bit-identical to the same
   requests sharded across 4 concurrent domains — the worker-count
   invariance the hard cap must not break, computed exactly as the
   worker pool computes it. *)
let test_backoff_jitter_worker_invariant () =
  let policy = { Backoff.base_us = 100; factor = 3; cap_us = 5_000 } in
  let ids = List.init 32 (fun i -> Printf.sprintf "req-%02d" i) in
  let schedule id =
    let rng = Prng.create (42 lxor Strhash.djb2 id) in
    List.init 5 (fun i -> Backoff.delay_us policy rng ~attempt:(i + 1))
  in
  let serial = List.map schedule ids in
  let workers = 4 in
  let shards =
    List.init workers (fun w -> List.filteri (fun i _ -> i mod workers = w) ids)
  in
  let by_shard =
    List.map (fun shard -> Domain.spawn (fun () -> List.map schedule shard)) shards
    |> List.map Domain.join
  in
  let sharded =
    List.mapi (fun i _ -> List.nth (List.nth by_shard (i mod workers)) (i / workers)) ids
  in
  check bool_c "4-worker schedules = 1-worker schedules" true (sharded = serial);
  (* and an adversarial policy still lands under the module hard cap *)
  let hostile = { Backoff.base_us = max_int / 2; factor = max_int / 2; cap_us = max_int } in
  let rng = Prng.create 7 in
  List.iter
    (fun attempt ->
      let d = Backoff.delay_us hostile rng ~attempt in
      check bool_c (Printf.sprintf "attempt %d hard-capped" attempt) true
        (d >= 0 && d <= Backoff.hard_cap_us + (Backoff.hard_cap_us / 2)))
    [ 1; 2; 13; 62 ]

let test_run_backpressure () =
  let s =
    Runtime.run { base_config with queue_capacity = 4; burst = 7 } (batch 14)
  in
  (* each 7-request wave admits 4 and rejects 3 *)
  check int_c "rejected" 6 s.Runtime.rejected;
  check int_c "completed" 8 s.Runtime.completed;
  check int_c "dropped" 0 s.Runtime.dropped;
  check int_c "queue peak bounded" 4 s.Runtime.queue_peak;
  List.iter
    (fun (o : Runtime.outcome) ->
      if o.Runtime.status = Runtime.Rejected then
        match o.Runtime.error with
        | Some (Rerror.Overloaded { capacity = 4; pending = 4 }) -> ()
        | _ -> Alcotest.fail "rejection must carry the typed Overloaded error")
    s.Runtime.outcomes

(* The acceptance property: stop the run after ANY number of waves, resume
   from the journal, and the union of checkpointed + re-solved results is
   exactly the uninterrupted run's result set. Fuel makes some requests
   degrade deterministically, so the set mixes rungs. *)
let test_kill_and_resume_determinism () =
  let config = { base_config with burst = 1; fuel = Some 60; workers = Some 1 } in
  let requests = batch 10 in
  let path = tmp_path "resume.journal" in
  let uninterrupted =
    if Sys.file_exists path then Sys.remove path;
    Runtime.run ~journal:(Journal.fresh path) config requests
  in
  let expected = result_set uninterrupted in
  check bool_c "fuel mixes rungs" true (List.length uninterrupted.Runtime.rungs > 1);
  for kill_after = 0 to 10 do
    if Sys.file_exists path then Sys.remove path;
    let polls = ref 0 in
    let should_stop () =
      incr polls;
      !polls > kill_after
    in
    let first = Runtime.run ~journal:(Journal.fresh path) ~should_stop config requests in
    if kill_after < 10 then
      check bool_c (Printf.sprintf "kill@%d interrupted" kill_after) true first.Runtime.interrupted;
    let resumed = Runtime.run ~journal:(Journal.load path) config requests in
    check int_c
      (Printf.sprintf "kill@%d resumed checkpoint count" kill_after)
      first.Runtime.completed resumed.Runtime.checkpointed;
    check bool_c
      (Printf.sprintf "kill@%d identical result set" kill_after)
      true
      (result_set resumed = expected)
  done;
  Sys.remove path

(* A SIGKILL between add and flush: the journal on disk is a clean prefix
   (atomic rename), the resumed run re-solves the un-flushed tail and
   still converges to the same set. Simulated by never flushing the tail:
   checkpoint_every larger than the batch, no final flush (we abandon the
   journal value instead of returning normally... the runtime always
   final-flushes, so emulate by truncating the on-disk journal). *)
let test_resume_from_prefix_journal () =
  let config = { base_config with burst = 1; fuel = Some 60; workers = Some 1 } in
  let requests = batch 8 in
  let path = tmp_path "prefix.journal" in
  if Sys.file_exists path then Sys.remove path;
  let full = Runtime.run ~journal:(Journal.fresh path) config requests in
  let expected = result_set full in
  (* keep only the first 3 journal lines — a valid crash-time prefix *)
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Atomic_file.write path (String.concat "" (List.map (fun l -> l ^ "\n") (List.filteri (fun i _ -> i < 3) lines)));
  let resumed = Runtime.run ~journal:(Journal.load path) config requests in
  check int_c "three checkpointed" 3 resumed.Runtime.checkpointed;
  check bool_c "same set from prefix" true (result_set resumed = expected);
  Sys.remove path

(* Fuel-starved requests degrade on every probe of the requested rung, so
   the breaker trips, routes to the certified 2-approx (which charges no
   fuel and succeeds), half-opens, and re-opens on the failed probe — all
   visible in the obs counters. *)
let test_breaker_trips_in_runtime () =
  let config =
    { base_config with burst = 1; fuel = Some 1; workers = Some 1; retries = 0; breaker_k = 2 }
  in
  let requests =
    List.filter (fun (r : Request.t) -> r.Request.variant = Variant.Nonpreemptive) (batch 24)
  in
  let s, report = Probe.with_recording (fun () -> Runtime.run config requests) in
  check int_c "all done" (List.length requests) s.Runtime.completed;
  let transitions = List.assoc Variant.Nonpreemptive s.Runtime.breaker in
  check bool_c "tripped" true (List.mem "closed->open" transitions);
  check bool_c "half-opened" true (List.mem "open->half-open" transitions);
  check bool_c "failed probe re-opened" true (List.mem "half-open->open" transitions);
  check bool_c "open counter" true (Bss_obs.Report.counter report "service.breaker.open" >= 1);
  check bool_c "half-open counter" true
    (Bss_obs.Report.counter report "service.breaker.half-open" >= 1);
  (* fallback-routed requests reached the certified rung without degrading *)
  check bool_c "fallback routed" true
    (List.exists
       (fun (o : Runtime.outcome) -> o.Runtime.routed = "fallback" && not o.Runtime.degraded)
       s.Runtime.outcomes)

(* Under seeded chaos (solver faults + service faults) the service
   contract holds: every request is accounted for, nothing is dropped,
   and the journal converges to clean. *)
let test_chaos_contract () =
  List.iter
    (fun chaos ->
      let path = tmp_path (Printf.sprintf "chaos%d.journal" chaos) in
      if Sys.file_exists path then Sys.remove path;
      let config =
        { base_config with queue_capacity = 6; burst = 8; chaos = Some chaos; retries = 2 }
      in
      let s = Runtime.run ~journal:(Journal.fresh path) config (batch 20) in
      check int_c (Printf.sprintf "chaos=%d dropped" chaos) 0 s.Runtime.dropped;
      check int_c
        (Printf.sprintf "chaos=%d accounted" chaos)
        20
        (s.Runtime.completed + s.Runtime.rejected + s.Runtime.aborted);
      check int_c (Printf.sprintf "chaos=%d journal clean" chaos) 0 s.Runtime.journal_dirty;
      (* journaled entries agree with reported outcomes *)
      let j = Journal.load path in
      List.iter
        (fun (o : Runtime.outcome) ->
          if o.Runtime.status = Runtime.Done then
            check bool_c
              (Printf.sprintf "chaos=%d %s journaled" chaos o.Runtime.request.Request.id)
              true
              (Journal.mem j o.Runtime.request.Request.id))
        s.Runtime.outcomes;
      Sys.remove path)
    [ 1; 2; 3; 4; 5 ]

(* ---------------- requests and batch files ---------------- *)

let test_batch_parse_roundtrip () =
  let text =
    "# comment\n\
     \n\
     a nonp 3/2 gen uniform 7 4 16\n\
     b pmtn 2 file /tmp/foo.txt\n\
     c split 3/2+1/8 gen tiny 3 2 8\n"
  in
  let rs = Request.of_batch_string text in
  check int_c "three requests" 3 (List.length rs);
  let again = Request.of_batch_string (String.concat "\n" (List.map Request.to_line rs)) in
  check bool_c "to_line round-trips" true (rs = again)

let test_batch_parse_errors () =
  (match Request.of_batch_string "a nonp 3/2 gen uniform 7 4\n" with
  | exception Rerror.Error (Rerror.Invalid_input { line = Some 1; field = "request"; _ }) -> ()
  | _ -> Alcotest.fail "short gen line must be invalid");
  (match Request.of_batch_string "a nonp 3/2 file x\na pmtn 2 file y\n" with
  | exception Rerror.Error (Rerror.Invalid_input { line = Some 2; field = "id"; _ }) -> ()
  | _ -> Alcotest.fail "duplicate id must be invalid");
  match Request.of_batch_string "a quux 3/2 file x\n" with
  | exception Rerror.Error (Rerror.Invalid_input { field = "variant"; _ }) -> ()
  | _ -> Alcotest.fail "unknown variant must be invalid"

(* ---------------- request tracing and the SLO gate ---------------- *)

module Trace_ctx = Bss_obs.Trace_ctx
module Slo = Bss_obs.Slo

(* The tracing acceptance contract: seeded runs sample the same trace
   ids regardless of worker count (ids derive from the admission seq,
   never a clock), and every histogram exemplar id resolves to a
   sampled span tree. *)
let test_run_tracing_deterministic () =
  let requests = Request.soak_stream ~seed:5 ~requests:12 () in
  let run workers =
    Runtime.run
      { base_config with workers = Some workers; seed = 5; trace_sample = Some 4 }
      requests
  in
  let s1 = run 1 in
  let ids (s : Runtime.summary) =
    List.map (fun (t : Trace_ctx.trace) -> t.Trace_ctx.trace_id) s.Runtime.traces
  in
  check bool_c "traces sampled" true (s1.Runtime.traces <> []);
  check (Alcotest.list string_c) "sampled trace ids: 4 workers = 1 worker" (ids s1) (ids (run 4));
  List.iter
    (fun (t : Trace_ctx.trace) ->
      check string_c "id is derived from (seed, seq, request id)"
        (Trace_ctx.derive_id ~seed:5 ~seq:t.Trace_ctx.seq ~request_id:t.Trace_ctx.request_id)
        t.Trace_ctx.trace_id;
      check string_c "root span is the request" "request" t.Trace_ctx.root.Trace_ctx.name;
      check bool_c "trace records its outcome" true (Trace_ctx.attr t "outcome" <> None))
    s1.Runtime.traces;
  let sampled = ids s1 in
  List.iter
    (fun (_, h) ->
      List.iter
        (fun ex ->
          check bool_c ("exemplar " ^ ex ^ " resolves to a sampled trace") true
            (List.mem ex sampled))
        (Bss_obs.Hist.exemplar_ids h))
    s1.Runtime.hists;
  check bool_c "tracing off samples nothing" true
    ((Runtime.run { base_config with seed = 5 } requests).Runtime.traces = [])

(* The SLO gate verdict is made of deterministic counters only here (no
   latency objective), so its JSON compares bit-for-bit across worker
   counts; rejections flip it to fail and name the objective. *)
let test_run_slo_gate_deterministic () =
  let spec =
    match
      Slo.of_string
        {|{"schema":"bss-slo/1","objectives":[
            {"name":"errors","type":"error_rate","max":0.0},
            {"name":"retries","type":"retry_rate","max":0.5}]}|}
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let verdict config n =
    match (Runtime.run { config with Runtime.slo = Some spec } (batch n)).Runtime.slo_verdict with
    | Some v -> v
    | None -> Alcotest.fail "a run with --slo must carry a verdict"
  in
  let v1 = verdict { base_config with workers = Some 1 } 9 in
  check bool_c "clean run passes" true v1.Slo.ok;
  check string_c "verdict json: 4 workers = 1 worker" (Slo.verdict_json v1)
    (Slo.verdict_json (verdict { base_config with workers = Some 4 } 9));
  let vf = verdict { base_config with queue_capacity = 4; burst = 7 } 14 in
  check bool_c "rejections fail the zero-error objective" false vf.Slo.ok;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check bool_c "failed objective named in the json" true
    (contains (Slo.verdict_json vf) {|"failed":["errors"]|})

let test_soak_stream_deterministic () =
  let a = Request.soak_stream ~seed:5 ~requests:16 () in
  check bool_c "stable" true (a = Request.soak_stream ~seed:5 ~requests:16 ());
  check bool_c "prefix-closed" true
    (Request.soak_stream ~seed:5 ~requests:8 () = List.filteri (fun i _ -> i < 8) a);
  let ids = List.map (fun (r : Request.t) -> r.Request.id) a in
  check bool_c "unique ids" true (List.length (List.sort_uniq compare ids) = 16)

(* the service site catalogue stays disjoint from the solver's, so the
   historical solver plan stream (and its cram pins) is untouched *)
let test_service_sites_disjoint () =
  List.iter
    (fun s -> check bool_c (s ^ " not a solver site") false (List.mem s Chaos.sites))
    Chaos.service_sites;
  check bool_c "plan_of_seed default stream unchanged" true
    (Chaos.plan_of_seed 42 = Chaos.plan_of_seed ~spread:12 42)

let () =
  Alcotest.run "bss_service"
    [
      ("atomic-file", [ Alcotest.test_case "write+replace" `Quick test_atomic_write ]);
      ( "bqueue",
        [
          Alcotest.test_case "backpressure" `Quick test_bqueue_backpressure;
          Alcotest.test_case "admission chaos" `Quick test_bqueue_admit_chaos;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "deterministic jitter" `Quick test_backoff_deterministic;
          Alcotest.test_case "monotonic wait" `Quick test_backoff_wait_monotonic;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "full cycle" `Quick test_breaker_cycle;
          Alcotest.test_case "success resets" `Quick test_breaker_success_resets;
          Alcotest.test_case "probe chaos" `Quick test_breaker_probe_chaos;
          Alcotest.test_case "concurrent half-open probe" `Quick test_breaker_concurrent_probe;
        ] );
      ( "journal",
        [
          Alcotest.test_case "round-trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "missing and corrupt" `Quick test_journal_missing_and_corrupt;
          Alcotest.test_case "flush fault keeps old" `Quick test_journal_flush_chaos_keeps_old;
          Alcotest.test_case "rotation" `Quick test_journal_rotation;
          Alcotest.test_case "salvage in a sealed segment" `Quick test_journal_salvage_sealed_segment;
          Alcotest.test_case "salvage in the active file" `Quick test_journal_salvage_active_file;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "clean run" `Quick test_run_clean;
          Alcotest.test_case "worker-count invariant" `Quick test_run_worker_count_invariant;
          Alcotest.test_case "backoff jitter worker-invariant" `Quick test_backoff_jitter_worker_invariant;
          Alcotest.test_case "backpressure" `Quick test_run_backpressure;
          Alcotest.test_case "kill-and-resume determinism" `Slow test_kill_and_resume_determinism;
          Alcotest.test_case "resume from prefix journal" `Quick test_resume_from_prefix_journal;
          Alcotest.test_case "breaker trips and recovers" `Quick test_breaker_trips_in_runtime;
          Alcotest.test_case "chaos contract" `Slow test_chaos_contract;
          Alcotest.test_case "tracing deterministic" `Quick test_run_tracing_deterministic;
          Alcotest.test_case "slo gate deterministic" `Quick test_run_slo_gate_deterministic;
        ] );
      ( "requests",
        [
          Alcotest.test_case "batch parse round-trip" `Quick test_batch_parse_roundtrip;
          Alcotest.test_case "batch parse errors" `Quick test_batch_parse_errors;
          Alcotest.test_case "soak stream deterministic" `Quick test_soak_stream_deterministic;
          Alcotest.test_case "service sites disjoint" `Quick test_service_sites_disjoint;
        ] );
    ]
