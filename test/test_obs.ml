(* Tests for the telemetry layer: the disabled path must be free (no
   counters, no observable allocation), the enabled path must see the
   paper-level counters the searches advertise. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_obs

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* ---------------- disabled path ---------------- *)

(* Outside a recording, probes must not allocate: count/enter/leave take
   the [None] fast path and span tokens are unboxed ints. Event payload
   construction is the caller's responsibility (guard with [enabled]), so
   the event here is built once, before measuring; the [span] closure is
   likewise hoisted (the disabled path tail-calls it, and a capturing
   closure would charge its own allocation to the caller). *)
let span_body () = ()

let test_disabled_no_alloc () =
  assert (not (Probe.enabled ()));
  let static_event = Event.Note { source = "test"; key = "k"; value = "v" } in
  (* warm-up triggers any lazy initialization *)
  for _ = 1 to 128 do
    Probe.count "warmup";
    Probe.observe "warmup.hist" 1.0;
    Probe.span "warmup.span" span_body;
    Probe.leave (Probe.enter "warmup")
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Probe.count "noop.counter";
    Probe.count ~n:5 "noop.counter5";
    Probe.event static_event;
    Probe.observe "noop.hist" 2.0;
    Probe.span "noop.spanf" span_body;
    let tok = Probe.enter "noop.span" in
    Probe.leave tok
  done;
  let delta = Gc.minor_words () -. before in
  check (Alcotest.float 0.0) "minor words allocated while disabled" 0.0 delta

(* Probes fired outside any recording leave no trace in a later one. *)
let test_disabled_adds_nothing () =
  Probe.count "leaked.counter";
  Probe.event (Event.Note { source = "leak"; key = "k"; value = "v" });
  Probe.leave (Probe.enter "leaked.span");
  let (), report = Probe.with_recording (fun () -> ()) in
  check int_c "no counters" 0 (List.length report.Report.counters);
  check int_c "no spans" 0 (List.length report.Report.spans);
  check int_c "no events" 0 (List.length report.Report.events);
  check int_c "no drops" 0 report.Report.dropped_events

(* ---------------- enabled path ---------------- *)

let test_recording_basics () =
  let x, report =
    Probe.with_recording (fun () ->
        Probe.count "a";
        Probe.count ~n:4 "a";
        Probe.count "b";
        Probe.event (Event.Note { source = "t"; key = "k"; value = "v" });
        Probe.span "outer" (fun () -> Probe.span "inner" (fun () -> 42)))
  in
  check int_c "result" 42 x;
  check int_c "a" 5 (Report.counter report "a");
  check int_c "b" 1 (Report.counter report "b");
  check int_c "absent" 0 (Report.counter report "zzz");
  check int_c "events" 1 (List.length report.Report.events);
  let span_paths = List.map fst report.Report.spans in
  check bool_c "outer span" true (List.mem "outer" span_paths);
  check bool_c "nested path" true (List.mem "outer/inner" span_paths);
  List.iter
    (fun (_, { Report.calls; ns }) ->
      check int_c "calls" 1 calls;
      check bool_c "time >= 0" true (Int64.compare ns 0L >= 0))
    report.Report.spans

(* a raise between enter and leave only loses the skipped frames *)
let test_span_unwind_on_raise () =
  let (), report =
    Probe.with_recording (fun () ->
        try Probe.span "guarded" (fun () -> failwith "boom") with Failure _ -> ())
  in
  match report.Report.spans with
  | [ ("guarded", { Report.calls = 1; _ }) ] -> ()
  | spans -> Alcotest.failf "unexpected spans: %s" (String.concat "," (List.map fst spans))

let test_merge () =
  let (), r1 =
    Probe.with_recording (fun () ->
        Probe.count ~n:3 "x";
        Probe.leave (Probe.enter "s"))
  in
  let (), r2 =
    Probe.with_recording (fun () ->
        Probe.count ~n:4 "x";
        Probe.count "y";
        Probe.leave (Probe.enter "s"))
  in
  let m = Report.merge r1 r2 in
  check int_c "x summed" 7 (Report.counter m "x");
  check int_c "y" 1 (Report.counter m "y");
  match List.assoc_opt "s" m.Report.spans with
  | Some { Report.calls = 2; _ } -> ()
  | _ -> Alcotest.fail "span calls not summed"

(* ---------------- counters the algorithms advertise ---------------- *)

(* Deterministic instance on which both class-jumping searches take jump
   steps (the [expensive] family stresses Lemma 3 / Lemma 5 paths; the
   cram test pins the same instance's exact counter values). *)
let jumpy_instance () =
  let spec = Bss_workloads.Generator.by_name "expensive" in
  spec.Bss_workloads.Generator.generate (Prng.create 1) ~m:16 ~n:48

let profile algorithm variant inst =
  let _, report = Probe.with_recording (fun () -> Solver.solve ~algorithm variant inst) in
  report

let test_solver_counters () =
  let inst = jumpy_instance () in
  let r = profile Solver.Approx3_2 Variant.Splittable inst in
  check bool_c "split bound tests" true (Report.counter r "splittable_cj.bound_tests" > 0);
  check bool_c "split jump steps" true (Report.counter r "splittable_cj.jump_steps" > 0);
  let r = profile Solver.Approx3_2 Variant.Preemptive inst in
  check bool_c "pmtn bound tests" true (Report.counter r "pmtn_cj.bound_tests" > 0);
  check bool_c "pmtn jump steps" true (Report.counter r "pmtn_cj.jump_steps" > 0);
  let r = profile Solver.Approx3_2 Variant.Nonpreemptive inst in
  check bool_c "nonp guesses" true (Report.counter r "nonp_search.guesses" > 0);
  let r = profile (Solver.Approx3_2_eps (Rat.of_ints 1 8)) Variant.Nonpreemptive inst in
  check bool_c "eps guesses" true (Report.counter r "dual_search.guesses" > 0);
  check bool_c "eps verdicts partition guesses" true
    (Report.counter r "dual_search.accepted" + Report.counter r "dual_search.rejected"
    = Report.counter r "dual_search.guesses")

(* counters are deterministic: two identical runs, identical reports
   modulo span timings *)
let test_counters_deterministic () =
  let inst = jumpy_instance () in
  let r1 = profile Solver.Approx3_2 Variant.Preemptive inst in
  let r2 = profile Solver.Approx3_2 Variant.Preemptive inst in
  check bool_c "counters equal" true (r1.Report.counters = r2.Report.counters);
  check int_c "event count equal" (List.length r1.Report.events) (List.length r2.Report.events)

(* ---------------- sinks ---------------- *)

let sample_report () =
  let _, report =
    Probe.with_recording (fun () ->
        Probe.count ~n:2 "k";
        Probe.event (Event.Guess_rejected { source = "t"; t = Rat.of_ints 7 2; reason = "load" });
        Probe.span "s" (fun () -> ()))
  in
  report

let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render_table () =
  let t = Render.table ~events:true (sample_report ()) in
  List.iter
    (fun needle -> check bool_c ("table has " ^ needle) true (string_contains t needle))
    [ "counter"; "k"; "2"; "span"; "s"; "guess_rejected" ]

let test_render_json_and_csv () =
  let r = sample_report () in
  let j = Render.json r in
  check bool_c "json counters" true (string_contains j "\"k\":2");
  check bool_c "json rejected event" true (string_contains j "\"guess_rejected\"");
  check bool_c "json rational" true (string_contains j "7/2");
  let lines = String.split_on_char '\n' (Render.jsonl r) |> List.filter (fun l -> l <> "") in
  check bool_c "jsonl one object per line" true
    (List.for_all (fun l -> l.[0] = '{' && l.[String.length l - 1] = '}') lines);
  let csv = Render.csv r in
  check bool_c "csv header" true (string_contains csv "kind,name,value,detail");
  check bool_c "csv counter row" true (string_contains csv "counter,k,2,")

let test_event_cap () =
  let (), report =
    Probe.with_recording (fun () ->
        for i = 1 to Report.event_cap + 10 do
          Probe.event (Event.Note { source = "t"; key = "i"; value = string_of_int i })
        done)
  in
  check int_c "capped" Report.event_cap (List.length report.Report.events);
  check int_c "drops counted" 10 report.Report.dropped_events;
  check int_c "drops surfaced as a counter" 10 (Report.counter report "obs.events.dropped");
  check bool_c "table leads with the warning" true
    (string_contains (Render.table report) "10 event(s) dropped");
  check bool_c "json carries the warning" true (string_contains (Render.json report) "\"warning\"")

(* ---------------- histograms ---------------- *)

let float_c = Alcotest.float 0.0

(* Boundary-aligned samples make the bucket quantiles exact, so they pin. *)
let test_hist_pinned_quantiles () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 1.; 2.; 4.; 8. ];
  let s = Hist.snapshot h in
  check int_c "count" 4 s.Hist.count;
  check float_c "sum" 15. s.Hist.sum;
  check float_c "min" 1. s.Hist.min;
  check float_c "max" 8. s.Hist.max;
  check float_c "p50" 2. (Hist.quantile s 0.5);
  check float_c "p90" 8. (Hist.quantile s 0.9);
  check float_c "p99" 8. (Hist.quantile s 0.99);
  (* a constant stream: every quantile is the constant, via min/max clamping *)
  let u = Hist.create () in
  for _ = 1 to 100 do
    Hist.record u 7.0
  done;
  let su = Hist.snapshot u in
  List.iter
    (fun p -> check float_c (Printf.sprintf "constant q%.2f" p) 7.0 (Hist.quantile su p))
    [ 0.5; 0.9; 0.99; 1.0 ];
  check bool_c "to_json shape" true
    (List.for_all (string_contains (Hist.to_json su)) [ "\"count\":100"; "\"p50\""; "\"p99\""; "\"buckets\"" ])

(* Fixed boundaries make the merge exact: splitting a stream across two
   histograms and merging equals recording the pooled stream. *)
let test_hist_merge_exact () =
  let a = Hist.create () and b = Hist.create () and pooled = Hist.create () in
  let xs = [ 3.; 100.; 0.5; 17.; 1024.; 9.; 0.; 1e12 ] in
  List.iteri
    (fun i v ->
      Hist.record (if i mod 2 = 0 then a else b) v;
      Hist.record pooled v)
    xs;
  let m = Hist.merge (Hist.snapshot a) (Hist.snapshot b) in
  check bool_c "merge equals pooled snapshot" true (m = Hist.snapshot pooled)

(* ---------------- deterministic multi-domain merge ---------------- *)

(* The event interleave key is (per-domain seq, domain id): emission
   order within a domain is preserved, ties across domains break by id. *)
let test_merge_event_interleave () =
  let entry domain seq value =
    { Report.domain; seq; event = Event.Note { source = "m"; key = "k"; value } }
  in
  let r1 = { Report.empty with Report.events = [ entry 0 0 "d0e0"; entry 0 1 "d0e1" ] } in
  let r2 = { Report.empty with Report.events = [ entry 1 0 "d1e0"; entry 1 1 "d1e1" ] } in
  let values r =
    List.map
      (fun (e : Report.event_entry) ->
        match e.Report.event with Event.Note { value; _ } -> value | _ -> "?")
      r.Report.events
  in
  check (Alcotest.list Alcotest.string) "interleaved by (seq, domain)"
    [ "d0e0"; "d1e0"; "d0e1"; "d1e1" ]
    (values (Report.merge r1 r2));
  (* and the merge is order-insensitive for disjoint domains *)
  check bool_c "commutative" true (Report.merge r1 r2 = Report.merge r2 r1)

(* Workers recording concurrently through their per-domain collectors
   must merge to exactly the sequential reference: counters and explicit
   histogram buckets equal, span paths and call counts equal (span
   timings are wall-clock and are not compared). *)
let stress_item i =
  Probe.count "stress.items";
  Probe.count ~n:(i mod 5) "stress.weight";
  Probe.span "stress.work" (fun () ->
      Probe.observe "stress.val" (float_of_int (1 lsl (i mod 6))));
  if Probe.enabled () then
    Probe.event (Event.Note { source = "stress"; key = "i"; value = string_of_int i })

let test_multi_domain_stress () =
  let items = List.init 64 Fun.id in
  let (), par =
    Probe.with_recording (fun () ->
        List.iter
          (function Ok _ -> () | Error _ -> Alcotest.fail "stress worker failed")
          (Parallel.map_results ~domains:4 ~retries:0
             (fun i ->
               stress_item i;
               i)
             items))
  in
  let (), seq = Probe.with_recording (fun () -> List.iter stress_item items) in
  check bool_c "counters equal sequential reference" true
    (par.Report.counters = seq.Report.counters);
  let hp = Option.get (Report.hist par "stress.val") in
  let hs = Option.get (Report.hist seq "stress.val") in
  check int_c "hist count" hs.Hist.count hp.Hist.count;
  check float_c "hist sum" hs.Hist.sum hp.Hist.sum;
  check bool_c "hist buckets equal" true (hp.Hist.counts = hs.Hist.counts);
  let span_calls r = List.map (fun (p, s) -> (p, s.Report.calls)) r.Report.spans in
  check bool_c "span paths and calls equal" true (span_calls par = span_calls seq);
  check int_c "event count" (List.length seq.Report.events) (List.length par.Report.events)

(* Acceptance: a profiled service run's merged counters are independent
   of the worker count — the property that lets `bss soak --profile` keep
   its full pool (it used to pin to one worker). *)
let service_counters ~workers =
  let module Runtime = Bss_service.Runtime in
  let requests = Bss_service.Request.soak_stream ~seed:5 ~requests:12 in
  let config = { Runtime.default_config with Runtime.workers = Some workers; seed = 5 } in
  let _, report = Probe.with_recording (fun () -> Runtime.run config requests) in
  report.Report.counters

let test_service_profile_worker_independent () =
  check bool_c "soak counters: 4 workers = 1 worker" true
    (service_counters ~workers:4 = service_counters ~workers:1)

(* ---------------- Chrome trace export ---------------- *)

let test_chrome_trace () =
  let (), r =
    Probe.with_recording (fun () ->
        Probe.span "outer" (fun () -> Probe.span "inner" (fun () -> ()));
        Probe.count ~n:3 "c")
  in
  let t = Render.chrome_trace r in
  List.iter
    (fun needle -> check bool_c ("trace has " ^ needle) true (string_contains t needle))
    [
      "\"traceEvents\"";
      "\"ph\":\"M\"";
      "\"ph\":\"X\"";
      "\"ph\":\"C\"";
      "process_name";
      "\"name\":\"inner\"";
      "\"path\":\"outer/inner\"";
      "\"displayTimeUnit\":\"ms\"";
    ]

let () =
  Alcotest.run "bss_obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "no allocation" `Quick test_disabled_no_alloc;
          Alcotest.test_case "adds nothing" `Quick test_disabled_adds_nothing;
        ] );
      ( "recording",
        [
          Alcotest.test_case "basics" `Quick test_recording_basics;
          Alcotest.test_case "unwind on raise" `Quick test_span_unwind_on_raise;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "event cap" `Quick test_event_cap;
        ] );
      ( "hist",
        [
          Alcotest.test_case "pinned quantiles" `Quick test_hist_pinned_quantiles;
          Alcotest.test_case "exact merge" `Quick test_hist_merge_exact;
        ] );
      ( "multi-domain",
        [
          Alcotest.test_case "event interleave" `Quick test_merge_event_interleave;
          Alcotest.test_case "stress vs sequential" `Quick test_multi_domain_stress;
          Alcotest.test_case "service profile worker-independent" `Quick
            test_service_profile_worker_independent;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "advertised counters" `Quick test_solver_counters;
          Alcotest.test_case "deterministic" `Quick test_counters_deterministic;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "json+csv" `Quick test_render_json_and_csv;
        ] );
    ]
