(* Tests for the telemetry layer: the disabled path must be free (no
   counters, no observable allocation), the enabled path must see the
   paper-level counters the searches advertise. *)

open Bss_util
open Bss_instances
open Bss_core
open Bss_obs

let check = Alcotest.check
let int_c = Alcotest.int
let bool_c = Alcotest.bool

(* ---------------- disabled path ---------------- *)

(* Outside a recording, probes must not allocate: count/enter/leave take
   the [None] fast path and span tokens are unboxed ints. Event payload
   construction is the caller's responsibility (guard with [enabled]), so
   the event here is built once, before measuring; the [span] closure is
   likewise hoisted (the disabled path tail-calls it, and a capturing
   closure would charge its own allocation to the caller). *)
let span_body () = ()

let test_disabled_no_alloc () =
  assert (not (Probe.enabled ()));
  let static_event = Event.Note { source = "test"; key = "k"; value = "v" } in
  (* warm-up triggers any lazy initialization *)
  for _ = 1 to 128 do
    Probe.count "warmup";
    Probe.observe "warmup.hist" 1.0;
    Probe.span "warmup.span" span_body;
    Probe.leave (Probe.enter "warmup")
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Probe.count "noop.counter";
    Probe.count ~n:5 "noop.counter5";
    Probe.event static_event;
    Probe.observe "noop.hist" 2.0;
    Probe.span "noop.spanf" span_body;
    let tok = Probe.enter "noop.span" in
    Probe.leave tok
  done;
  let delta = Gc.minor_words () -. before in
  check (Alcotest.float 0.0) "minor words allocated while disabled" 0.0 delta

(* Probes fired outside any recording leave no trace in a later one. *)
let test_disabled_adds_nothing () =
  Probe.count "leaked.counter";
  Probe.event (Event.Note { source = "leak"; key = "k"; value = "v" });
  Probe.leave (Probe.enter "leaked.span");
  let (), report = Probe.with_recording (fun () -> ()) in
  check int_c "no counters" 0 (List.length report.Report.counters);
  check int_c "no spans" 0 (List.length report.Report.spans);
  check int_c "no events" 0 (List.length report.Report.events);
  check int_c "no drops" 0 report.Report.dropped_events

(* ---------------- enabled path ---------------- *)

let test_recording_basics () =
  let x, report =
    Probe.with_recording (fun () ->
        Probe.count "a";
        Probe.count ~n:4 "a";
        Probe.count "b";
        Probe.event (Event.Note { source = "t"; key = "k"; value = "v" });
        Probe.span "outer" (fun () -> Probe.span "inner" (fun () -> 42)))
  in
  check int_c "result" 42 x;
  check int_c "a" 5 (Report.counter report "a");
  check int_c "b" 1 (Report.counter report "b");
  check int_c "absent" 0 (Report.counter report "zzz");
  check int_c "events" 1 (List.length report.Report.events);
  let span_paths = List.map fst report.Report.spans in
  check bool_c "outer span" true (List.mem "outer" span_paths);
  check bool_c "nested path" true (List.mem "outer/inner" span_paths);
  List.iter
    (fun (_, { Report.calls; ns }) ->
      check int_c "calls" 1 calls;
      check bool_c "time >= 0" true (Int64.compare ns 0L >= 0))
    report.Report.spans

(* a raise between enter and leave only loses the skipped frames *)
let test_span_unwind_on_raise () =
  let (), report =
    Probe.with_recording (fun () ->
        try Probe.span "guarded" (fun () -> failwith "boom") with Failure _ -> ())
  in
  match report.Report.spans with
  | [ ("guarded", { Report.calls = 1; _ }) ] -> ()
  | spans -> Alcotest.failf "unexpected spans: %s" (String.concat "," (List.map fst spans))

let test_merge () =
  let (), r1 =
    Probe.with_recording (fun () ->
        Probe.count ~n:3 "x";
        Probe.leave (Probe.enter "s"))
  in
  let (), r2 =
    Probe.with_recording (fun () ->
        Probe.count ~n:4 "x";
        Probe.count "y";
        Probe.leave (Probe.enter "s"))
  in
  let m = Report.merge r1 r2 in
  check int_c "x summed" 7 (Report.counter m "x");
  check int_c "y" 1 (Report.counter m "y");
  match List.assoc_opt "s" m.Report.spans with
  | Some { Report.calls = 2; _ } -> ()
  | _ -> Alcotest.fail "span calls not summed"

(* ---------------- counters the algorithms advertise ---------------- *)

(* Deterministic instance on which both class-jumping searches take jump
   steps (the [expensive] family stresses Lemma 3 / Lemma 5 paths; the
   cram test pins the same instance's exact counter values). *)
let jumpy_instance () =
  let spec = Bss_workloads.Generator.by_name "expensive" in
  spec.Bss_workloads.Generator.generate (Prng.create 1) ~m:16 ~n:48

let profile algorithm variant inst =
  let _, report = Probe.with_recording (fun () -> Solver.solve ~algorithm variant inst) in
  report

let test_solver_counters () =
  let inst = jumpy_instance () in
  let r = profile Solver.Approx3_2 Variant.Splittable inst in
  check bool_c "split bound tests" true (Report.counter r "splittable_cj.bound_tests" > 0);
  check bool_c "split jump steps" true (Report.counter r "splittable_cj.jump_steps" > 0);
  let r = profile Solver.Approx3_2 Variant.Preemptive inst in
  check bool_c "pmtn bound tests" true (Report.counter r "pmtn_cj.bound_tests" > 0);
  check bool_c "pmtn jump steps" true (Report.counter r "pmtn_cj.jump_steps" > 0);
  let r = profile Solver.Approx3_2 Variant.Nonpreemptive inst in
  check bool_c "nonp guesses" true (Report.counter r "nonp_search.guesses" > 0);
  let r = profile (Solver.Approx3_2_eps (Rat.of_ints 1 8)) Variant.Nonpreemptive inst in
  check bool_c "eps guesses" true (Report.counter r "dual_search.guesses" > 0);
  check bool_c "eps verdicts partition guesses" true
    (Report.counter r "dual_search.accepted" + Report.counter r "dual_search.rejected"
    = Report.counter r "dual_search.guesses")

(* counters are deterministic: two identical runs, identical reports
   modulo span timings *)
let test_counters_deterministic () =
  let inst = jumpy_instance () in
  let r1 = profile Solver.Approx3_2 Variant.Preemptive inst in
  let r2 = profile Solver.Approx3_2 Variant.Preemptive inst in
  check bool_c "counters equal" true (r1.Report.counters = r2.Report.counters);
  check int_c "event count equal" (List.length r1.Report.events) (List.length r2.Report.events)

(* ---------------- sinks ---------------- *)

let sample_report () =
  let _, report =
    Probe.with_recording (fun () ->
        Probe.count ~n:2 "k";
        Probe.event (Event.Guess_rejected { source = "t"; t = Rat.of_ints 7 2; reason = "load" });
        Probe.span "s" (fun () -> ()))
  in
  report

let string_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_render_table () =
  let t = Render.table ~events:true (sample_report ()) in
  List.iter
    (fun needle -> check bool_c ("table has " ^ needle) true (string_contains t needle))
    [ "counter"; "k"; "2"; "span"; "s"; "guess_rejected" ]

let test_render_json_and_csv () =
  let r = sample_report () in
  let j = Render.json r in
  check bool_c "json counters" true (string_contains j "\"k\":2");
  check bool_c "json rejected event" true (string_contains j "\"guess_rejected\"");
  check bool_c "json rational" true (string_contains j "7/2");
  let lines = String.split_on_char '\n' (Render.jsonl r) |> List.filter (fun l -> l <> "") in
  check bool_c "jsonl one object per line" true
    (List.for_all (fun l -> l.[0] = '{' && l.[String.length l - 1] = '}') lines);
  let csv = Render.csv r in
  check bool_c "csv header" true (string_contains csv "kind,name,value,detail");
  check bool_c "csv counter row" true (string_contains csv "counter,k,2,")

let test_event_cap () =
  let (), report =
    Probe.with_recording (fun () ->
        for i = 1 to Report.event_cap + 10 do
          Probe.event (Event.Note { source = "t"; key = "i"; value = string_of_int i })
        done)
  in
  check int_c "capped" Report.event_cap (List.length report.Report.events);
  check int_c "drops counted" 10 report.Report.dropped_events;
  check int_c "drops surfaced as a counter" 10 (Report.counter report "obs.events.dropped");
  check bool_c "table leads with the warning" true
    (string_contains (Render.table report) "10 event(s) dropped");
  check bool_c "json carries the warning" true (string_contains (Render.json report) "\"warning\"")

(* ---------------- histograms ---------------- *)

let float_c = Alcotest.float 0.0

(* Boundary-aligned samples make the bucket quantiles exact, so they pin. *)
let test_hist_pinned_quantiles () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 1.; 2.; 4.; 8. ];
  let s = Hist.snapshot h in
  check int_c "count" 4 s.Hist.count;
  check float_c "sum" 15. s.Hist.sum;
  check float_c "min" 1. s.Hist.min;
  check float_c "max" 8. s.Hist.max;
  check float_c "p50" 2. (Hist.quantile s 0.5);
  check float_c "p90" 8. (Hist.quantile s 0.9);
  check float_c "p99" 8. (Hist.quantile s 0.99);
  (* a constant stream: every quantile is the constant, via min/max clamping *)
  let u = Hist.create () in
  for _ = 1 to 100 do
    Hist.record u 7.0
  done;
  let su = Hist.snapshot u in
  List.iter
    (fun p -> check float_c (Printf.sprintf "constant q%.2f" p) 7.0 (Hist.quantile su p))
    [ 0.5; 0.9; 0.99; 1.0 ];
  check bool_c "to_json shape" true
    (List.for_all (string_contains (Hist.to_json su)) [ "\"count\":100"; "\"p50\""; "\"p99\""; "\"buckets\"" ])

(* Fixed boundaries make the merge exact: splitting a stream across two
   histograms and merging equals recording the pooled stream. *)
let test_hist_merge_exact () =
  let a = Hist.create () and b = Hist.create () and pooled = Hist.create () in
  let xs = [ 3.; 100.; 0.5; 17.; 1024.; 9.; 0.; 1e12 ] in
  List.iteri
    (fun i v ->
      Hist.record (if i mod 2 = 0 then a else b) v;
      Hist.record pooled v)
    xs;
  let m = Hist.merge (Hist.snapshot a) (Hist.snapshot b) in
  check bool_c "merge equals pooled snapshot" true (m = Hist.snapshot pooled)

(* ---------------- hist edge cases and exemplars ---------------- *)

let test_hist_edges () =
  (* empty: every quantile is 0, nothing to cite *)
  check float_c "empty p50" 0. (Hist.quantile Hist.empty 0.5);
  check float_c "empty p100" 0. (Hist.quantile Hist.empty 1.0);
  check (Alcotest.list Alcotest.string) "empty exemplars" [] (Hist.exemplar_ids Hist.empty);
  let h = Hist.create () in
  check bool_c "fresh snapshot is empty" true (Hist.snapshot h = Hist.empty);
  (* a single observation: every quantile clamps to it *)
  Hist.record h 1000.;
  let s = Hist.snapshot h in
  List.iter
    (fun p -> check float_c (Printf.sprintf "single q%.1f" p) 1000. (Hist.quantile s p))
    [ 0.0; 0.5; 1.0 ];
  (* clamp boundaries: bucket 0 holds [< 1), bucket i holds [2^(i-1), 2^i) *)
  let b = Hist.create () in
  List.iter (Hist.record b) [ 0.; 0.999; 1.0; 2.0; 4.0 ];
  let sb = Hist.snapshot b in
  check (Alcotest.list int_c) "boundary values land in ascending buckets" [ 0; 1; 2; 3 ]
    (List.map fst sb.Hist.counts);
  check float_c "lower_bound 0" 0. (Hist.lower_bound 0);
  check float_c "upper_bound 0" 1. (Hist.upper_bound 0);
  check float_c "lower_bound 3" 4. (Hist.lower_bound 3);
  check bool_c "last bucket open" true (Hist.upper_bound (Hist.buckets - 1) = infinity)

let test_hist_exemplar_eviction () =
  (* the ring overwrites slot (seen mod cap): attaching a,b,c to one
     bucket keeps [b; c] oldest-first — a pure function of attach order *)
  let attach ids =
    let h = Hist.create () in
    List.iter (fun id -> Hist.record_exemplar h 100. id) ids;
    Hist.snapshot h
  in
  let s = attach [ "a"; "b"; "c" ] in
  check (Alcotest.list Alcotest.string) "ring evicts the oldest" [ "b"; "c" ] (Hist.exemplar_ids s);
  check bool_c "replay is deterministic" true (attach [ "a"; "b"; "c" ] = s);
  check (Alcotest.list Alcotest.string) "p99 bucket cites its exemplars" [ "b"; "c" ]
    (Hist.quantile_exemplars s 0.99);
  (* merge keeps the smallest cap ids of the union, order-insensitive *)
  let t = attach [ "x" ] in
  check (Alcotest.list Alcotest.string) "merge unions and truncates" [ "b"; "c" ]
    (Hist.exemplar_ids (Hist.merge s t));
  check bool_c "merge commutative on exemplars" true (Hist.merge s t = Hist.merge t s)

let test_hist_diff () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 2.; 3. ];
  let prev = Hist.snapshot h in
  List.iter (Hist.record h) [ 100.; 200. ];
  let cur = Hist.snapshot h in
  let w = Hist.diff cur prev in
  check int_c "window count" 2 w.Hist.count;
  check float_c "window sum" 300. w.Hist.sum;
  check bool_c "window buckets exclude the old range" true
    (List.for_all (fun (i, _) -> Hist.lower_bound i >= 64.) w.Hist.counts);
  check bool_c "empty window" true (Hist.diff cur cur = Hist.empty);
  check bool_c "diff against empty is cur" true (Hist.diff cur Hist.empty = cur)

let test_hist_json_roundtrip () =
  let h = Hist.create () in
  (* values kept small: the writer's %.6g float format must represent
     count/sum/min/max exactly for the snapshot to round-trip *)
  List.iter (fun (v, id) -> Hist.record_exemplar h v id) [ (1., "t1"); (64., "t2"); (300., "t3") ];
  let s = Hist.snapshot h in
  match Json.parse (Hist.to_json s) with
  | Error e -> Alcotest.fail e
  | Ok v -> (
    match Hist.snapshot_of_json v with
    | Ok s' -> check bool_c "snapshot round-trips through JSON" true (s' = s)
    | Error e -> Alcotest.fail e)

(* ---------------- deterministic multi-domain merge ---------------- *)

(* The event interleave key is (per-domain seq, domain id): emission
   order within a domain is preserved, ties across domains break by id. *)
let test_merge_event_interleave () =
  let entry domain seq value =
    { Report.domain; seq; event = Event.Note { source = "m"; key = "k"; value } }
  in
  let r1 = { Report.empty with Report.events = [ entry 0 0 "d0e0"; entry 0 1 "d0e1" ] } in
  let r2 = { Report.empty with Report.events = [ entry 1 0 "d1e0"; entry 1 1 "d1e1" ] } in
  let values r =
    List.map
      (fun (e : Report.event_entry) ->
        match e.Report.event with Event.Note { value; _ } -> value | _ -> "?")
      r.Report.events
  in
  check (Alcotest.list Alcotest.string) "interleaved by (seq, domain)"
    [ "d0e0"; "d1e0"; "d0e1"; "d1e1" ]
    (values (Report.merge r1 r2));
  (* and the merge is order-insensitive for disjoint domains *)
  check bool_c "commutative" true (Report.merge r1 r2 = Report.merge r2 r1)

(* Merging is where the event cap actually bites for multi-domain runs:
   each collector stays under the cap, but their union may not. The
   overflow must be dropped from the interleaved tail, counted in
   [dropped_events] and surfaced as the "obs.events.dropped" counter. *)
let test_merge_event_cap () =
  let entries domain n =
    List.init n (fun seq ->
        { Report.domain; seq; event = Event.Note { source = "m"; key = "k"; value = "" } })
  in
  let half = (Report.event_cap / 2) + 5 in
  let mk domain = { Report.empty with Report.events = entries domain half } in
  let m = Report.merge (mk 0) (mk 1) in
  check int_c "capped at event_cap" Report.event_cap (List.length m.Report.events);
  check int_c "overflow counted" 10 m.Report.dropped_events;
  check int_c "overflow surfaces as a counter" 10 (Report.counter m "obs.events.dropped");
  (* the kept prefix is still the (seq, domain) interleave, i.e. the
     earliest events survive, not whichever side merged first *)
  let keys = List.map (fun (e : Report.event_entry) -> (e.Report.seq, e.Report.domain)) m.Report.events in
  check bool_c "kept prefix interleaved by (seq, domain)" true (keys = List.sort compare keys);
  (* with two domains contributing [half] events each, the cap keeps
     exactly the first event_cap/2 seqs of both *)
  check bool_c "kept prefix is the earliest events" true
    (List.for_all (fun (seq, _) -> seq < Report.event_cap / 2) keys)

(* Workers recording concurrently through their per-domain collectors
   must merge to exactly the sequential reference: counters and explicit
   histogram buckets equal, span paths and call counts equal (span
   timings are wall-clock and are not compared). *)
let stress_item i =
  Probe.count "stress.items";
  Probe.count ~n:(i mod 5) "stress.weight";
  Probe.span "stress.work" (fun () ->
      Probe.observe "stress.val" (float_of_int (1 lsl (i mod 6))));
  if Probe.enabled () then
    Probe.event (Event.Note { source = "stress"; key = "i"; value = string_of_int i })

let test_multi_domain_stress () =
  let items = List.init 64 Fun.id in
  let (), par =
    Probe.with_recording (fun () ->
        List.iter
          (function Ok _ -> () | Error _ -> Alcotest.fail "stress worker failed")
          (Parallel.map_results ~domains:4 ~retries:0
             (fun i ->
               stress_item i;
               i)
             items))
  in
  let (), seq = Probe.with_recording (fun () -> List.iter stress_item items) in
  check bool_c "counters equal sequential reference" true
    (par.Report.counters = seq.Report.counters);
  let hp = Option.get (Report.hist par "stress.val") in
  let hs = Option.get (Report.hist seq "stress.val") in
  check int_c "hist count" hs.Hist.count hp.Hist.count;
  check float_c "hist sum" hs.Hist.sum hp.Hist.sum;
  check bool_c "hist buckets equal" true (hp.Hist.counts = hs.Hist.counts);
  let span_calls r = List.map (fun (p, s) -> (p, s.Report.calls)) r.Report.spans in
  check bool_c "span paths and calls equal" true (span_calls par = span_calls seq);
  check int_c "event count" (List.length seq.Report.events) (List.length par.Report.events)

(* Acceptance: a profiled service run's merged counters are independent
   of the worker count — the property that lets `bss soak --profile` keep
   its full pool (it used to pin to one worker). *)
let service_counters ~workers =
  let module Runtime = Bss_service.Runtime in
  let requests = Bss_service.Request.soak_stream ~seed:5 ~requests:12 () in
  let config = { Runtime.default_config with Runtime.workers = Some workers; seed = 5 } in
  let _, report = Probe.with_recording (fun () -> Runtime.run config requests) in
  report.Report.counters

let test_service_profile_worker_independent () =
  check bool_c "soak counters: 4 workers = 1 worker" true
    (service_counters ~workers:4 = service_counters ~workers:1)

(* ---------------- request-scoped trace contexts ---------------- *)

let test_trace_ids_deterministic () =
  let id = Trace_ctx.derive_id ~seed:7 ~seq:3 ~request_id:"soak-3" in
  check Alcotest.string "stable across calls" id
    (Trace_ctx.derive_id ~seed:7 ~seq:3 ~request_id:"soak-3");
  check bool_c "carries the admission seq" true (string_contains id "-0003");
  check bool_c "seed changes the id" true
    (id <> Trace_ctx.derive_id ~seed:8 ~seq:3 ~request_id:"soak-3");
  check bool_c "request id changes the id" true
    (id <> Trace_ctx.derive_id ~seed:7 ~seq:3 ~request_id:"soak-4")

let test_trace_span_tree () =
  let t = Trace_ctx.make ~seed:1 ~seq:0 ~request_id:"req" in
  check bool_c "live ctx enabled" true (Trace_ctx.enabled t);
  Trace_ctx.add_attr t "variant" (Trace_ctx.S "splittable");
  let tok = Trace_ctx.enter t "attempt" in
  Trace_ctx.add_attr t "n" (Trace_ctx.I 0);
  Trace_ctx.leave t tok;
  Trace_ctx.add_span t "queue.wait" ~dur_ns:42L ~attrs:[ ("phase", Trace_ctx.S "queue") ];
  match Trace_ctx.finish t with
  | None -> Alcotest.fail "live context must produce a trace"
  | Some trace ->
    check Alcotest.string "root is the request span" "request" trace.Trace_ctx.root.Trace_ctx.name;
    check Alcotest.string "trace id is the derived id"
      (Trace_ctx.derive_id ~seed:1 ~seq:0 ~request_id:"req")
      trace.Trace_ctx.trace_id;
    check (Alcotest.list Alcotest.string) "children in emission order" [ "attempt"; "queue.wait" ]
      (List.map (fun (s : Trace_ctx.span) -> s.Trace_ctx.name) trace.Trace_ctx.root.Trace_ctx.children);
    check (Alcotest.option Alcotest.string) "root attr readable" (Some "splittable")
      (Trace_ctx.attr trace "variant");
    let j = Trace_ctx.to_json trace in
    check bool_c "json names the trace" true (string_contains j trace.Trace_ctx.trace_id);
    check bool_c "json keeps the tree" true (string_contains j "\"queue.wait\"")

let test_trace_unwind_on_raise () =
  (* a raise inside [span] loses only the open frame, not the trace *)
  let t = Trace_ctx.make ~seed:1 ~seq:1 ~request_id:"r" in
  (try Trace_ctx.span t "guarded" (fun () -> failwith "boom") with Failure _ -> ());
  Trace_ctx.add_span t "after" ~dur_ns:1L ~attrs:[];
  match Trace_ctx.finish t with
  | None -> Alcotest.fail "trace lost after raise"
  | Some trace ->
    check (Alcotest.list Alcotest.string) "both children recorded" [ "guarded"; "after" ]
      (List.map (fun (s : Trace_ctx.span) -> s.Trace_ctx.name) trace.Trace_ctx.root.Trace_ctx.children)

(* Disabled tracing must cost nothing on the hot path — same contract
   (and same measurement discipline) as [test_disabled_no_alloc]: the
   attribute value, the attrs list and the body closure are hoisted so
   only the traced operations themselves are charged. *)
let tctx_body () = ()

let test_trace_disabled_no_alloc () =
  let t = Trace_ctx.disabled in
  check bool_c "disabled reports disabled" false (Trace_ctx.enabled t);
  let attr_v = Trace_ctx.S "v" in
  let no_attrs = [] in
  let dur = 0L in
  for _ = 1 to 128 do
    Trace_ctx.leave t (Trace_ctx.enter t "warm");
    Trace_ctx.add_attr t "k" attr_v;
    Trace_ctx.add_span t "warm" ~dur_ns:dur ~attrs:no_attrs;
    tctx_body (Trace_ctx.span t "warm" tctx_body)
  done;
  Gc.minor ();
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    let tok = Trace_ctx.enter t "noop" in
    Trace_ctx.add_attr t "k" attr_v;
    Trace_ctx.add_span t "noop" ~dur_ns:dur ~attrs:no_attrs;
    Trace_ctx.leave t tok;
    tctx_body (Trace_ctx.span t "noop" tctx_body)
  done;
  let delta = Gc.minor_words () -. before in
  check float_c "minor words allocated while tracing disabled" 0.0 delta;
  check bool_c "finish yields nothing" true (Trace_ctx.finish t = None)

let test_trace_reservoir () =
  let items = List.init 20 Fun.id in
  let kept = Trace_ctx.reservoir ~seed:3 ~k:5 items in
  check int_c "keeps k" 5 (List.length kept);
  check bool_c "deterministic" true (kept = Trace_ctx.reservoir ~seed:3 ~k:5 items);
  check bool_c "input order preserved" true (List.sort compare kept = kept);
  check bool_c "different seed, different sample" true
    (kept <> Trace_ctx.reservoir ~seed:4 ~k:5 items);
  check bool_c "k = 0 keeps nothing" true (Trace_ctx.reservoir ~seed:3 ~k:0 items = []);
  check bool_c "k >= n keeps everything" true (Trace_ctx.reservoir ~seed:3 ~k:50 items = items)

(* ---------------- SLO engine ---------------- *)

let slo_latency_spec max_ns =
  {
    Slo.objectives =
      [ { Slo.name = "solve-p99"; target = Slo.Latency { hist = "lat"; quantile = 0.99; max_ns } } ];
  }

let test_slo_eval () =
  let h = Hist.create () in
  List.iter (Hist.record h) [ 10.; 20.; 64. ];
  let sample =
    { Slo.empty_sample with Slo.completed = 9; rejected = 1; hists = [ ("lat", Hist.snapshot h) ] }
  in
  (* latency: p99 resolves to 64, passing a 100ns bound, failing 50ns *)
  (match Slo.eval (slo_latency_spec 100.) sample with
  | [ c ] ->
    check bool_c "latency under bound passes" true c.Slo.ok;
    check float_c "measured is the bucket quantile" 64. c.Slo.measured;
    check float_c "burn = measured/threshold" 0.64 c.Slo.burn
  | _ -> Alcotest.fail "one check per objective");
  (match Slo.eval (slo_latency_spec 50.) sample with
  | [ c ] ->
    check bool_c "latency over bound fails" false c.Slo.ok;
    check float_c "burn > 1 when violating" 1.28 c.Slo.burn
  | _ -> Alcotest.fail "one check per objective");
  (* error rate: 1 rejection in 10 outcomes is exactly 0.1 *)
  let errs = { Slo.objectives = [ { Slo.name = "errs"; target = Slo.Error_rate { max = 0.1 } } ] } in
  (match Slo.eval errs sample with
  | [ c ] ->
    check bool_c "at the ceiling passes" true c.Slo.ok;
    check float_c "error rate measured" 0.1 c.Slo.measured;
    check float_c "burn at ceiling is 1" 1.0 c.Slo.burn
  | _ -> Alcotest.fail "one check per objective")

let test_slo_windows_and_final () =
  let spec = { Slo.objectives = [ { Slo.name = "errs"; target = Slo.Error_rate { max = 0.25 } } ] } in
  let e = Slo.engine spec in
  (* first window: 4 clean completions *)
  let s1 = { Slo.empty_sample with Slo.completed = 4 } in
  let v1 = Slo.window e s1 in
  check bool_c "clean window passes" true v1.Slo.ok;
  check int_c "window counted" 1 v1.Slo.windows;
  (* second window: the *delta* is 4 rejections and nothing else *)
  let s2 = { Slo.empty_sample with Slo.completed = 4; rejected = 4 } in
  let v2 = Slo.window e s2 in
  check bool_c "all-error window fails" false v2.Slo.ok;
  (match v2.Slo.checks with
  | [ c ] -> check float_c "window burn uses the delta, not the cumulative" 4.0 c.Slo.burn
  | _ -> Alcotest.fail "one check per objective");
  (* the gate is cumulative: 4 errors in 8 outcomes = 0.5 > 0.25 *)
  let f = Slo.final e s2 in
  check bool_c "final verdict fails" false f.Slo.ok;
  check int_c "final remembers the windows" 2 f.Slo.windows;
  check bool_c "worst window burn carried" true (f.Slo.worst_burn = [ ("errs", 4.0) ]);
  let j = Slo.verdict_json f in
  check bool_c "verdict json leads with the verdict" true
    (string_contains j "{\"verdict\":\"fail\",\"failed\":[\"errs\"]");
  check bool_c "verdict text names the objective" true (string_contains (Slo.verdict_text f) "errs")

let test_slo_file_roundtrip () =
  let src =
    {|{"schema":"bss-slo/1","objectives":[
        {"name":"p99","type":"latency","hist":"service.solve_ns","quantile":0.99,"max_ms":5.0},
        {"name":"errors","type":"error_rate","max":0.05},
        {"name":"retries","type":"retry_rate","max":0.5}]}|}
  in
  (match Slo.of_string src with
  | Error e -> Alcotest.fail e
  | Ok spec -> (
    check int_c "three objectives" 3 (List.length spec.Slo.objectives);
    (match (List.hd spec.Slo.objectives).Slo.target with
    | Slo.Latency { hist; quantile; max_ns } ->
      check Alcotest.string "hist name" "service.solve_ns" hist;
      check float_c "quantile" 0.99 quantile;
      check float_c "max_ms converts to ns" 5e6 max_ns
    | _ -> Alcotest.fail "first objective should be latency");
    match Slo.of_string (Slo.to_json spec) with
    | Ok spec' -> check bool_c "round-trips through to_json" true (spec' = spec)
    | Error e -> Alcotest.fail e));
  let reject src needle =
    match Slo.of_string src with
    | Ok _ -> Alcotest.fail ("accepted: " ^ needle)
    | Error e -> check bool_c ("rejects " ^ needle) true (string_contains e needle)
  in
  reject {|{"schema":"bss-slo/9","objectives":[]}|} "schema";
  reject {|{"schema":"bss-slo/1","objectives":[]}|} "objective";
  reject {|{"schema":"bss-slo/1","objectives":[{"name":"x","type":"latency?"}]}|} "type"

(* ---------------- offline analysis (bss report) ---------------- *)

let test_offline_parse_metrics () =
  let stream =
    String.concat "\n"
      [
        "soak: wave 1 done";
        {|{"schema":"bss-metrics/1","metrics":{"completed":3,"rejected":1,"aborted":0,"retries":2,"queue_peak":4,"waves":1,"hists":{}}}|};
        {|{"schema":"bss-metrics/1","metrics":{"completed":8,"rejected":1,"aborted":0,"retries":2,"queue_peak":4,"waves":2,"hists":{}}}|};
        "trailing human text";
      ]
  in
  (match Offline.parse_metrics stream with
  | Error e -> Alcotest.fail e
  | Ok points ->
    check int_c "two records" 2 (List.length points);
    let last = Offline.last points in
    check int_c "last completed" 8 last.Offline.completed;
    check bool_c "counters rows" true
      (List.mem ("completed", 8) (Offline.counters last)));
  (match Offline.parse_metrics {|{"schema":"bss-metrics/0","metrics":{}}|} with
  | Ok _ -> Alcotest.fail "accepted unknown metrics schema"
  | Error e ->
    check bool_c "unknown schema is an error, not a skip" true (string_contains e "schema"));
  match Offline.parse_metrics "no json at all" with
  | Ok _ -> Alcotest.fail "accepted a stream with no records"
  | Error e -> check bool_c "empty stream is an error" true (string_contains e "no metrics")

let test_offline_traces_roundtrip () =
  (* a trace written by Render.chrome_trace must come back with its
     phase breakdown intact — the bss report read path *)
  let t = Trace_ctx.make ~seed:1 ~seq:0 ~request_id:"soak-0" in
  Trace_ctx.add_span t "queue.wait" ~dur_ns:2_000_000L ~attrs:[ ("phase", Trace_ctx.S "queue") ];
  Trace_ctx.add_span t "attempt" ~dur_ns:5_000_000L ~attrs:[ ("phase", Trace_ctx.S "solve") ];
  let trace = Option.get (Trace_ctx.finish t) in
  let file = Render.chrome_trace ~traces:[ trace ] Report.empty in
  match Offline.parse_traces file with
  | Error e -> Alcotest.fail e
  | Ok [ row ] ->
    check Alcotest.string "trace id survives" trace.Trace_ctx.trace_id row.Offline.trace_id;
    check Alcotest.string "request id survives" "soak-0" row.Offline.request_id;
    check int_c "seq is the tid" 0 row.Offline.seq;
    check float_c "queue phase regrouped (ns)" 2e6 (List.assoc "queue" row.Offline.phases);
    check float_c "solve phase regrouped (ns)" 5e6 (List.assoc "solve" row.Offline.phases);
    let table = Offline.trace_table [ row ] in
    check bool_c "trace table names the trace" true (string_contains table row.Offline.trace_id)
  | Ok rows -> Alcotest.fail (Printf.sprintf "expected 1 trace row, got %d" (List.length rows))

let test_offline_tables () =
  let h = Hist.create () in
  List.iter (fun (v, id) -> Hist.record_exemplar h v id) [ (1., "aa-1"); (64., "bb-2") ];
  let point =
    {
      Offline.empty_point with
      Offline.completed = 5;
      retries = 2;
      hists = [ ("service.total_ns", Hist.snapshot h) ];
    }
  in
  let pt = Offline.percentile_table point in
  List.iter
    (fun needle -> check bool_c ("percentile table has " ^ needle) true (string_contains pt needle))
    [ "service.total_ns"; "p99"; "bb-2" ];
  let baseline = { Offline.empty_point with Offline.completed = 3; retries = 2 } in
  let ct = Offline.counter_table ~baseline point in
  List.iter
    (fun needle -> check bool_c ("counter diff has " ^ needle) true (string_contains ct needle))
    [ "baseline"; "delta"; "+2" ]

(* ---------------- Chrome trace export ---------------- *)

let test_chrome_trace () =
  let (), r =
    Probe.with_recording (fun () ->
        Probe.span "outer" (fun () -> Probe.span "inner" (fun () -> ()));
        Probe.count ~n:3 "c")
  in
  let t = Render.chrome_trace r in
  List.iter
    (fun needle -> check bool_c ("trace has " ^ needle) true (string_contains t needle))
    [
      "\"traceEvents\"";
      "\"ph\":\"M\"";
      "\"ph\":\"X\"";
      "\"ph\":\"C\"";
      "process_name";
      "\"name\":\"inner\"";
      "\"path\":\"outer/inner\"";
      "\"displayTimeUnit\":\"ms\"";
    ]

let () =
  Alcotest.run "bss_obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "no allocation" `Quick test_disabled_no_alloc;
          Alcotest.test_case "adds nothing" `Quick test_disabled_adds_nothing;
        ] );
      ( "recording",
        [
          Alcotest.test_case "basics" `Quick test_recording_basics;
          Alcotest.test_case "unwind on raise" `Quick test_span_unwind_on_raise;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "event cap" `Quick test_event_cap;
        ] );
      ( "hist",
        [
          Alcotest.test_case "pinned quantiles" `Quick test_hist_pinned_quantiles;
          Alcotest.test_case "exact merge" `Quick test_hist_merge_exact;
          Alcotest.test_case "edge cases" `Quick test_hist_edges;
          Alcotest.test_case "exemplar eviction" `Quick test_hist_exemplar_eviction;
          Alcotest.test_case "window diff" `Quick test_hist_diff;
          Alcotest.test_case "json round-trip" `Quick test_hist_json_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "deterministic ids" `Quick test_trace_ids_deterministic;
          Alcotest.test_case "span tree" `Quick test_trace_span_tree;
          Alcotest.test_case "unwind on raise" `Quick test_trace_unwind_on_raise;
          Alcotest.test_case "disabled no allocation" `Quick test_trace_disabled_no_alloc;
          Alcotest.test_case "reservoir" `Quick test_trace_reservoir;
        ] );
      ( "slo",
        [
          Alcotest.test_case "eval" `Quick test_slo_eval;
          Alcotest.test_case "windows and final" `Quick test_slo_windows_and_final;
          Alcotest.test_case "file round-trip" `Quick test_slo_file_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "parse metrics" `Quick test_offline_parse_metrics;
          Alcotest.test_case "trace round-trip" `Quick test_offline_traces_roundtrip;
          Alcotest.test_case "tables" `Quick test_offline_tables;
        ] );
      ( "multi-domain",
        [
          Alcotest.test_case "event interleave" `Quick test_merge_event_interleave;
          Alcotest.test_case "merge event cap" `Quick test_merge_event_cap;
          Alcotest.test_case "stress vs sequential" `Quick test_multi_domain_stress;
          Alcotest.test_case "service profile worker-independent" `Quick
            test_service_profile_worker_independent;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "advertised counters" `Quick test_solver_counters;
          Alcotest.test_case "deterministic" `Quick test_counters_deterministic;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "table" `Quick test_render_table;
          Alcotest.test_case "json+csv" `Quick test_render_json_and_csv;
        ] );
    ]
